package bench

import (
	"fmt"
	"strings"

	"procdecomp/internal/core"
	"procdecomp/internal/exec"
	"procdecomp/internal/faults"
	"procdecomp/internal/istruct"
	"procdecomp/internal/lang"
	"procdecomp/internal/machine"
	"procdecomp/internal/sem"
	"procdecomp/internal/trace"
	"procdecomp/internal/wavefront"
	"procdecomp/internal/xform"
)

// Series is one experiment's results, ready for printing.
type Series struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Format renders the series as an aligned text table.
func (s *Series) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s\n\n", s.Title)
	widths := make([]int, len(s.Columns))
	for i, c := range s.Columns {
		widths[i] = len(c)
	}
	for _, row := range s.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(s.Columns)
	sep := make([]string, len(s.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range s.Rows {
		writeRow(row)
	}
	for _, n := range s.Notes {
		fmt.Fprintf(&b, "\n%s\n", n)
	}
	return b.String()
}

// DefaultProcs is the processor sweep of Figs. 6 and 7 (the iPSC/2 the
// authors used had up to 32 nodes).
var DefaultProcs = []int{1, 2, 4, 8, 16, 32}

// DefaultBlk is the hand-written program's block size ("the handwritten
// version achieves this by sending the new elements in blocks of size 8").
const DefaultBlk int64 = 8

// Figure6 reproduces "Effect of Compile-time and Run-time Resolution":
// execution time vs. processors for run-time resolution, compile-time
// resolution, Optimized I, Optimized III, and the handwritten program on an
// N×N integer grid.
func Figure6(n int64, procs []int, blk int64) (*Series, error) {
	return timesByProcs("Figure 6: Effect of Compile-time and Run-time Resolution "+
		fmt.Sprintf("(%dx%d grid, blksize %d)", n, n, blk),
		[]Variant{RunTime, CompileTime, OptimizedI, OptimizedIII, Handwritten},
		n, procs, blk)
}

// Figure7 reproduces "Effect of Message-Passing Optimizations": the
// optimized variants against the handwritten program.
func Figure7(n int64, procs []int, blk int64) (*Series, error) {
	return timesByProcs("Figure 7: Effect of Message-Passing Optimizations "+
		fmt.Sprintf("(%dx%d grid, blksize %d)", n, n, blk),
		[]Variant{OptimizedI, OptimizedII, OptimizedIII, Handwritten},
		n, procs, blk)
}

func timesByProcs(title string, variants []Variant, n int64, procs []int, blk int64) (*Series, error) {
	s := &Series{Title: title, Columns: []string{"variant"}}
	for _, p := range procs {
		s.Columns = append(s.Columns, fmt.Sprintf("S=%d", p))
	}
	for _, v := range variants {
		row := []string{v.String()}
		for _, p := range procs {
			pt, err := RunGS(v, p, n, blk)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%d", pt.Makespan))
		}
		s.Rows = append(s.Rows, row)
	}
	s.Notes = append(s.Notes,
		"Times are simulated cycles (makespan over all processors); 1 cycle = 1 scalar operation.",
		"Expected shape: run-time/compile-time/Optimized I are flat (no parallelism);",
		"Optimized II drops with S (pipelining); Optimized III tracks the handwritten curve.")
	return s, nil
}

// MessageTable reproduces footnote 3: total message counts per variant.
func MessageTable(n int64, procs int, blk int64) (*Series, error) {
	s := &Series{
		Title:   fmt.Sprintf("Footnote 3: message counts (%dx%d grid, S=%d, blksize %d)", n, n, procs, blk),
		Columns: []string{"variant", "messages", "values moved"},
	}
	for _, v := range AllVariants {
		pt, err := RunGS(v, procs, n, blk)
		if err != nil {
			return nil, err
		}
		s.Rows = append(s.Rows, []string{v.String(),
			fmt.Sprintf("%d", pt.Messages), fmt.Sprintf("%d", pt.Values)})
	}
	s.Notes = append(s.Notes,
		"Paper (N=128, blksize 8): 31,752 messages for run-time resolution vs 2,142 handwritten.")
	return s, nil
}

// BlockSizeSweep explores §4's open question: "the best block size depends
// on the size of the matrix". For each grid size it reports the Optimized
// III makespan across block sizes and marks the best.
func BlockSizeSweep(ns []int64, blks []int64, procs int) (*Series, error) {
	s := &Series{
		Title:   fmt.Sprintf("Block-size sweep (Optimized III, S=%d)", procs),
		Columns: []string{"N \\ blksize"},
	}
	for _, b := range blks {
		s.Columns = append(s.Columns, fmt.Sprintf("%d", b))
	}
	s.Columns = append(s.Columns, "best")
	for _, n := range ns {
		row := []string{fmt.Sprintf("%d", n)}
		best, bestIdx := machine.Cost(0), -1
		for i, b := range blks {
			pt, err := RunGS(OptimizedIII, procs, n, b)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%d", pt.Makespan))
			if bestIdx < 0 || pt.Makespan < best {
				best, bestIdx = pt.Makespan, i
			}
		}
		row = append(row, fmt.Sprintf("%d", blks[bestIdx]))
		s.Rows = append(s.Rows, row)
	}
	s.Notes = append(s.Notes,
		"\"The block size is a compromise between decreasing the number of messages and exploiting parallelism\" (§4).")
	return s, nil
}

// InterchangeAblation reproduces the §4 loop-interchange discussion: the
// reversed-loop program compiled as-is shows no column pipelining, while
// interchanging the loops before specialization restores it.
func InterchangeAblation(n int64, procs int, blk int64) (*Series, error) {
	s := &Series{
		Title:   fmt.Sprintf("Loop interchange ablation (%dx%d grid, S=%d)", n, n, procs),
		Columns: []string{"program", "makespan", "messages"},
	}
	run := func(label string, interchange bool) error {
		info, err := checkGS(GSReversedSource, procs, n)
		if err != nil {
			return err
		}
		generic, err := core.New(info).CompileRTR("gs_iteration")
		if err != nil {
			return err
		}
		if interchange {
			if !xform.Interchange(generic, "i") {
				return fmt.Errorf("interchange did not apply")
			}
		}
		progs := core.SpecializeAll(generic, int64(procs), true)
		xform.Vectorize(progs)
		xform.Jam(progs)
		xform.StripMine(progs, blk)
		out, err := exec.RunSPMD(progs, machine.DefaultConfig(procs),
			map[string]*istruct.Matrix{"Old": Input(n)})
		if err != nil {
			return err
		}
		if err := validateGS(procs, n, out.Arrays["New"]); err != nil {
			return err
		}
		s.Rows = append(s.Rows, []string{label,
			fmt.Sprintf("%d", out.Stats.Makespan), fmt.Sprintf("%d", out.Stats.Messages)})
		return nil
	}
	if err := run("reversed loops, as written", false); err != nil {
		return nil, err
	}
	if err := run("reversed loops + interchange", true); err != nil {
		return nil, err
	}
	s.Notes = append(s.Notes,
		"§4: with the loops reversed the generated code shows no parallelism; interchange aligns",
		"the iteration order with the column decomposition and restores the pipeline.")
	return s, nil
}

// SharedMemoryAblation tests the paper's §1 claim that "even in
// shared-memory machines, spatial locality of reference is extremely
// important for good performance": the same programs run on a machine
// calibrated to shared-memory remote-access costs (tens of cycles instead of
// hundreds per message). The optimization gap narrows but does not vanish.
func SharedMemoryAblation(n int64, procs int, blk int64) (*Series, error) {
	s := &Series{
		Title:   fmt.Sprintf("Shared-memory ablation (%dx%d grid, S=%d, blksize %d)", n, n, procs, blk),
		Columns: []string{"variant", "message-passing", "shared-memory", "ratio mp/shm"},
	}
	for _, v := range []Variant{RunTime, CompileTime, OptimizedII, OptimizedIII, Handwritten} {
		mp, err := RunGSWith(machine.DefaultConfig(procs), v, n, blk)
		if err != nil {
			return nil, err
		}
		shm, err := RunGSWith(machine.SharedMemoryConfig(procs), v, n, blk)
		if err != nil {
			return nil, err
		}
		s.Rows = append(s.Rows, []string{v.String(),
			fmt.Sprintf("%d", mp.Makespan), fmt.Sprintf("%d", shm.Makespan),
			fmt.Sprintf("%.1fx", float64(mp.Makespan)/float64(shm.Makespan))})
	}
	s.Notes = append(s.Notes,
		"§1: message-passing machines pay hundreds of cycles per remote access, shared-memory",
		"machines tens; the decomposition and optimizations matter in both regimes.")
	return s, nil
}

// UtilizationTable explains Figs. 6/7 causally: the flat curves are
// processors sitting idle waiting for serialized messages. For each variant
// it reports the mean processor utilization (fraction of virtual time spent
// computing), the aggregate time partition, and the communication pattern —
// all computed from the run's event trace, whose per-process sums the
// machine verifies against its own Breakdown before any number is reported.
func UtilizationTable(n int64, procs int, blk int64) (*Series, error) {
	s := &Series{
		Title:   fmt.Sprintf("Processor utilization (%dx%d grid, S=%d, blksize %d)", n, n, procs, blk),
		Columns: []string{"variant", "utilization", "compute", "comm overhead", "idle", "messages", "busiest link"},
	}
	for _, v := range AllVariants {
		pt, tr, err := TraceGS(v, procs, n, blk, nil)
		if err != nil {
			return nil, err
		}
		tot := tr.Totals()
		if msgs := tr.Messages(); msgs != pt.Messages {
			return nil, fmt.Errorf("bench: trace counted %d messages, machine counted %d", msgs, pt.Messages)
		}
		link := "-"
		if src, dst, c, ok := tr.BusiestLink(); ok {
			link = fmt.Sprintf("%d->%d (%d)", src, dst, c)
		}
		s.Rows = append(s.Rows, []string{v.String(),
			fmt.Sprintf("%4.1f%%", 100*pt.MeanUtilization()),
			fmt.Sprintf("%d", tot.Compute), fmt.Sprintf("%d", tot.Comm),
			fmt.Sprintf("%d", tot.Idle+tot.Blocked),
			fmt.Sprintf("%d", pt.Messages), link})
	}
	s.Notes = append(s.Notes,
		"Idle time is cycles spent blocked in receives before the message arrived:",
		"the unoptimized variants serialize on it; pipelining and blocking reclaim it.",
		"Partitions are summed from the event trace and reconciled exactly with the",
		"machine's Breakdown; 'busiest link' is the (src->dst) pair from the message matrix.")
	return s, nil
}

// TraceGS runs one Gauss-Seidel variant with event tracing enabled and
// returns the machine statistics plus the event log. placement, when
// non-nil, multiplexes the virtual processes onto physical nodes
// (machine.Config.Placement). Every traced run self-checks: the harness
// fails if the per-process event sums do not reconcile exactly with the
// machine's compute/comm/idle partition.
func TraceGS(v Variant, procs int, n, blk int64, placement []int) (*machine.Stats, *trace.Log, error) {
	cfg := machine.DefaultConfig(procs)
	cfg.Placement = placement
	return TraceGSWith(cfg, v, n, blk)
}

// TraceGSWith is TraceGS on an explicit machine calibration — the hook for
// tracing fault-injected or re-calibrated runs (cfg.Tracer is installed here;
// any existing value is replaced).
func TraceGSWith(cfg machine.Config, v Variant, n, blk int64) (*machine.Stats, *trace.Log, error) {
	procs := cfg.Procs
	tr := trace.New()
	cfg.Tracer = tr
	if v == Handwritten {
		res, err := wavefront.Run(cfg, n, blk, Input(n))
		if err != nil {
			return nil, nil, err
		}
		return &res.Stats, tr, nil
	}
	progs, err := CompileGS(v, procs, n, blk)
	if err != nil {
		return nil, nil, err
	}
	out, err := exec.RunSPMD(progs, cfg, map[string]*istruct.Matrix{"Old": Input(n)})
	if err != nil {
		return nil, nil, err
	}
	return &out.Stats, tr, nil
}

// statsGS runs one Gauss-Seidel variant on an explicit machine calibration,
// validates the result matrix against the sequential reference, and returns
// the full machine statistics (RunGSWith's Point drops the transport
// counters a fault experiment needs).
func statsGS(cfg machine.Config, v Variant, n, blk int64) (machine.Stats, error) {
	var stats machine.Stats
	var result *istruct.Matrix
	if v == Handwritten {
		res, err := wavefront.Run(cfg, n, blk, Input(n))
		if err != nil {
			return stats, err
		}
		stats, result = res.Stats, res.New
	} else {
		progs, err := CompileGS(v, cfg.Procs, n, blk)
		if err != nil {
			return stats, err
		}
		out, err := exec.RunSPMD(progs, cfg, map[string]*istruct.Matrix{"Old": Input(n)})
		if err != nil {
			return stats, err
		}
		stats, result = out.Stats, out.Arrays["New"]
	}
	if err := validateGS(cfg.Procs, n, result); err != nil {
		return stats, fmt.Errorf("%v (procs=%d, n=%d, blk=%d): %w", v, cfg.Procs, n, blk, err)
	}
	return stats, nil
}

// FaultSweep quantifies the cost of unreliability: for each drop rate it runs
// Optimized III and the handwritten wavefront under a seeded chaos schedule
// (drops at the rate, duplicates and ack loss at half of it, jitter at the
// full rate) and reports the makespan, the slowdown against the fault-free
// run, and the transport's retry and duplicate-suppression counters. Every
// run's result matrix is validated against the sequential reference before
// the row is emitted: the table only ever shows runs that computed the right
// answer, which is the point — faults cost time, never correctness.
func FaultSweep(n, blk int64, procs int, seed uint64, rates []float64) (*Series, error) {
	s := &Series{
		Title: fmt.Sprintf("Fault sweep (%dx%d grid, S=%d, blksize %d, seed %d)",
			n, n, procs, blk, seed),
		Columns: []string{"variant", "drop rate", "makespan", "slowdown", "retries", "duplicates"},
	}
	for _, v := range []Variant{OptimizedIII, Handwritten} {
		var base machine.Cost
		for _, rate := range rates {
			cfg := machine.DefaultConfig(procs)
			if rate > 0 {
				cfg.Faults = faults.Chaos(seed, rate)
			}
			st, err := statsGS(cfg, v, n, blk)
			if err != nil {
				return nil, err
			}
			if rate == 0 {
				base = st.Makespan
			}
			slow := "1.00x"
			if base != 0 {
				slow = fmt.Sprintf("%.2fx", float64(st.Makespan)/float64(base))
			}
			s.Rows = append(s.Rows, []string{v.String(),
				fmt.Sprintf("%.0f%%", 100*rate),
				fmt.Sprintf("%d", st.Makespan), slow,
				fmt.Sprintf("%d", st.Retries), fmt.Sprintf("%d", st.Duplicates)})
		}
	}
	s.Notes = append(s.Notes,
		"Every row's result matrix equals the sequential reference: the reliable",
		"transport turns drops, duplicates, and reordering into virtual time only.",
		"Slowdown is relative to the same variant's fault-free makespan; retries and",
		"duplicates count retransmitted attempts and receiver-suppressed copies.")
	return s, nil
}

// triSource is a triangular-region relaxation: column j updates rows 2..j,
// so work grows with the column index. The decomposition choice is a real
// trade-off: wrapping the columns (§2.3's dealer metaphor) balances the
// compute, while blocks keep the stencil's neighbours local — Karp's §1
// admonition that "data organization is the key to parallel algorithms",
// measured from both sides.
const triSource = `
const N = 96;
const w = 0.25;

dist D = %s(NPROCS);

proc tri(Old: matrix[N, N] on D): matrix[N, N] on D {
  let New = matrix(N, N) on D;
  for j = 2 to N - 1 {
    for i = 2 to j {
      New[i, j] = w * (Old[i - 1, j] + Old[i + 1, j] + Old[i, j - 1] + Old[i, j + 1]);
    }
  }
  return New;
}
`

// LoadBalanceTable measures the triangular workload under block and cyclic
// column decompositions: makespan, message traffic, and the busiest/idlest
// processor's compute time. Wrapping balances the compute (lower imbalance)
// but pays for it dearly in communication — every column's neighbours are
// remote — while blocks communicate only at the block edges. Which
// decomposition wins is a property of the data organization, not the code:
// exactly the §1 claim.
func LoadBalanceTable(procs int) (*Series, error) {
	s := &Series{
		Title:   fmt.Sprintf("Decomposition choice: locality vs balance (triangular workload, S=%d)", procs),
		Columns: []string{"decomposition", "makespan", "messages", "max proc compute", "min proc compute", "imbalance"},
	}
	for _, d := range []string{"block_cols", "cyclic_cols"} {
		src := fmt.Sprintf(triSource, d)
		prog, err := lang.Parse(src)
		if err != nil {
			return nil, err
		}
		info, errs := sem.Check(prog, sem.Config{Procs: int64(procs)})
		if len(errs) > 0 {
			return nil, errs[0]
		}
		n := int64(info.Consts["N"].Const)
		progs, err := core.New(info).CompileCTR("tri", true)
		if err != nil {
			return nil, err
		}
		xform.Vectorize(progs)
		out, err := exec.RunSPMD(progs, machine.DefaultConfig(procs),
			map[string]*istruct.Matrix{"Old": Input(n)})
		if err != nil {
			return nil, err
		}
		// Validate against the sequential interpreter.
		seq, err := exec.RunSequential(info, "tri", []exec.ArgVal{{Matrix: Input(n)}})
		if err != nil {
			return nil, err
		}
		for i := int64(1); i <= n; i++ {
			for j := int64(1); j <= n; j++ {
				if seq.Ret.Matrix.Defined(i, j) != out.Arrays["New"].Defined(i, j) {
					return nil, fmt.Errorf("load balance: wrong result under %s at (%d,%d)", d, i, j)
				}
			}
		}
		maxC, minC := machine.Cost(0), machine.Cost(0)
		for i, b := range out.Stats.Breakdown {
			if i == 0 || b.Compute > maxC {
				maxC = b.Compute
			}
			if i == 0 || b.Compute < minC {
				minC = b.Compute
			}
		}
		imb := "n/a"
		if minC > 0 {
			imb = fmt.Sprintf("%.1fx", float64(maxC)/float64(minC))
		}
		s.Rows = append(s.Rows, []string{d,
			fmt.Sprintf("%d", out.Stats.Makespan),
			fmt.Sprintf("%d", out.Stats.Messages),
			fmt.Sprintf("%d", maxC), fmt.Sprintf("%d", minC), imb})
	}
	s.Notes = append(s.Notes,
		"§1 (Karp): \"data organization is the key to parallel algorithms\" — wrapping",
		"balances the triangle's compute, blocks keep the stencil local; on this",
		"machine the communication term dominates, so blocks win despite the imbalance.")
	return s, nil
}

// MultiplexTable tests §5.4's hypothesis: "A good process decomposition
// places several processes on one processor to ensure that when one process
// needs to wait for a remote reference the processor running it will have
// work to do." The Gauss-Seidel program is decomposed into S = factor×M
// virtual processes multiplexed onto M physical nodes (§2.2 footnote 2) and
// compared with the direct one-process-per-node decomposition. Placements:
// cyclic (process i on node i mod M — wavefront neighbours on different
// nodes) and blocked (consecutive processes share a node).
func MultiplexTable(nodes int, n, blk int64) (*Series, error) {
	s := &Series{
		Title: fmt.Sprintf("§5.4 multiplexing: virtual processes on %d nodes (%dx%d grid, Optimized III, blksize %d)",
			nodes, n, n, blk),
		Columns: []string{"decomposition", "placement", "makespan", "messages", "mean utilization"},
	}
	add := func(label, placementName string, vprocs int, placement []int) error {
		cfg := machine.DefaultConfig(vprocs)
		cfg.Placement = placement
		progs, err := CompileGS(OptimizedIII, vprocs, n, blk)
		if err != nil {
			return err
		}
		out, err := exec.RunSPMD(progs, cfg, map[string]*istruct.Matrix{"Old": Input(n)})
		if err != nil {
			return err
		}
		if err := validateGS(vprocs, n, out.Arrays["New"]); err != nil {
			return err
		}
		s.Rows = append(s.Rows, []string{label, placementName,
			fmt.Sprintf("%d", out.Stats.Makespan),
			fmt.Sprintf("%d", out.Stats.Messages),
			fmt.Sprintf("%4.1f%%", 100*out.Stats.MeanUtilization())})
		return nil
	}
	if err := add(fmt.Sprintf("%d processes (direct)", nodes), "one per node", nodes, nil); err != nil {
		return nil, err
	}
	for _, factor := range []int{2, 4} {
		vprocs := nodes * factor
		cyc := make([]int, vprocs)
		blkP := make([]int, vprocs)
		for i := range cyc {
			cyc[i] = i % nodes
			blkP[i] = i / factor
		}
		label := fmt.Sprintf("%d processes on %d nodes", vprocs, nodes)
		if err := add(label, "cyclic", vprocs, cyc); err != nil {
			return nil, err
		}
		if err := add(label, "blocked", vprocs, blkP); err != nil {
			return nil, err
		}
	}
	s.Notes = append(s.Notes,
		"§5.4: multiplexing hides message latency when a waiting process's node has",
		"other work; whether it wins depends on the extra messages finer decomposition costs.")
	return s, nil
}
