package bench

import (
	"fmt"

	"procdecomp/internal/core"
	"procdecomp/internal/machine"
	"procdecomp/internal/spmd"
	"procdecomp/internal/xform"
)

// A VariantSpec is one entry of the exported variant registry: the single
// place that ties a curve of Figs. 6/7 to its flag-friendly name, its
// transformation pipeline, and its compile/run hooks. pdbench and the pdmap
// search driver both consume this table, so the set of variants and the code
// each one generates cannot drift between the two.
type VariantSpec struct {
	Variant     Variant
	Name        string // short flag/mode name: rtr, ctr, opt1, opt2, opt3, hand
	Legend      string // the figure legend, Variant.String()
	Handwritten bool   // runs the wavefront package, not compiled code

	// Compile builds the per-process SPMD programs for the Fig. 1 source.
	// Handwritten has no compiled form and returns (nil, nil).
	Compile func(procs int, n, blk int64) ([]*spmd.Program, error)
	// Run measures one configuration on an explicit machine calibration,
	// validating the result against the sequential reference.
	Run func(cfg machine.Config, n, blk int64) (*Point, error)
}

// Pipeline reports the transformation passes the variant applies after
// compile-time resolution (nil for rtr/ctr/hand).
func (s VariantSpec) Pipeline(blk int64) []xform.Pass {
	if s.Handwritten {
		return nil
	}
	passes, _ := xform.StandardPipeline(s.Name, blk)
	return passes
}

// Variants lists the registry in presentation order (the order of
// AllVariants).
func Variants() []VariantSpec {
	specs := make([]VariantSpec, 0, len(AllVariants))
	for _, v := range AllVariants {
		spec, ok := SpecOf(v)
		if !ok {
			panic(fmt.Sprintf("bench: variant %v missing from the registry", v))
		}
		specs = append(specs, spec)
	}
	return specs
}

// SpecOf looks a variant's registry entry up by enum value.
func SpecOf(v Variant) (VariantSpec, bool) {
	name, ok := variantNames[v]
	if !ok {
		return VariantSpec{}, false
	}
	return makeSpec(v, name), true
}

// LookupVariant resolves a registry entry by its short name ("opt3") or its
// figure legend ("optimized III (blocked)").
func LookupVariant(name string) (VariantSpec, bool) {
	for _, v := range AllVariants {
		if variantNames[v] == name || v.String() == name {
			return makeSpec(v, variantNames[v]), true
		}
	}
	return VariantSpec{}, false
}

// variantNames pins each variant to its mode name. For the compiled variants
// the name doubles as the xform.StandardPipeline mode.
var variantNames = map[Variant]string{
	RunTime:      "rtr",
	CompileTime:  "ctr",
	OptimizedI:   "opt1",
	OptimizedII:  "opt2",
	OptimizedIII: "opt3",
	Handwritten:  "hand",
}

func makeSpec(v Variant, name string) VariantSpec {
	spec := VariantSpec{
		Variant:     v,
		Name:        name,
		Legend:      v.String(),
		Handwritten: v == Handwritten,
	}
	if spec.Handwritten {
		spec.Compile = func(procs int, n, blk int64) ([]*spmd.Program, error) { return nil, nil }
	} else {
		spec.Compile = func(procs int, n, blk int64) ([]*spmd.Program, error) {
			return compileGSAs(name, procs, n, blk)
		}
	}
	spec.Run = func(cfg machine.Config, n, blk int64) (*Point, error) {
		return RunGSWith(cfg, v, n, blk)
	}
	return spec
}

// compileGSAs compiles the Fig. 1 program under a named optimization mode,
// applying the standard validated pass pipeline. This is the one compile path
// behind CompileGS, the registry, and pdrun's mode switch.
func compileGSAs(mode string, procs int, n, blk int64) ([]*spmd.Program, error) {
	info, err := checkGS(GSSource, procs, n)
	if err != nil {
		return nil, err
	}
	comp := core.New(info)
	if mode == "rtr" {
		generic, err := comp.CompileRTR("gs_iteration")
		if err != nil {
			return nil, err
		}
		return []*spmd.Program{generic}, nil
	}
	passes, ok := xform.StandardPipeline(mode, blk)
	if !ok {
		return nil, fmt.Errorf("bench: unknown optimization mode %q", mode)
	}
	progs, err := comp.CompileCTR("gs_iteration", true)
	if err != nil {
		return nil, err
	}
	if _, err := xform.Apply(progs, passes); err != nil {
		return nil, err
	}
	return progs, nil
}
