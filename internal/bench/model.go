package bench

import "procdecomp/internal/machine"

// Block-size selection. §4 leaves open "the determination of the block size
// to obtain the best trade-off between minimizing message traffic and
// exploiting parallelism"; this file implements the natural analytic model
// and PredictBestBlock answers the question for the wavefront pattern.
//
// For an N×N grid on S processors, interior height M = N-2, block size B,
// K = ceil(M/B) blocks per column, two terms compete:
//
//   - work: each processor handles N/S columns, each costing M·cE compute
//     plus K block exchanges (send+receive start-up and 2B per-value costs)
//     plus one vectorized old-column message;
//   - chain: the wavefront's critical path — column j cannot start until
//     column j-1's first block arrives, so each of the N-2 interior columns
//     adds δ = B·cE + message cost, plus the completion of the last column.
//
//   T(B) ≈ max( (N/S)·perCol(B),  (N-2)·δ(B) + lastCol(B) )
//
// Small B inflates the K·startup message-traffic term; large B inflates the
// per-column chain delay δ (lost parallelism) — the paper's exact trade-off.

// elemCycles is the per-element compute cost of the blocked inner loop under
// the interpreter's accounting (reads, writes, subscripts, arithmetic, loop
// bookkeeping), in OpCost units. Derived by counting the charges of the
// Optimized III inner loop.
const elemCycles = 26

// PredictMakespan evaluates the analytic model for one block size.
func PredictMakespan(cfg machine.Config, n, blk int64) float64 {
	if blk <= 0 {
		return 0
	}
	s := int64(cfg.Procs)
	m := n - 2
	if m <= 0 || s <= 0 {
		return 0
	}
	k := (m + blk - 1) / blk
	cE := float64(elemCycles) * float64(cfg.OpCost)
	cSend := float64(cfg.SendStartup)
	cRecv := float64(cfg.RecvStartup)
	cVal := float64(cfg.PerValue)
	cLat := float64(cfg.Latency)

	colsPerProc := float64(n) / float64(s)
	blockMsg := cSend + cRecv + 2*float64(blk)*cVal
	perCol := float64(m)*cE + float64(k)*blockMsg +
		(cSend + cRecv + float64(m)*2*cVal) // the vectorized old column
	work := colsPerProc * perCol

	delta := float64(blk)*cE + blockMsg + cLat
	lastCol := float64(m)*cE + float64(k)*blockMsg
	chain := float64(m)*delta + lastCol

	if work > chain {
		return work
	}
	return chain
}

// PredictBestBlock returns the block size minimizing the model over
// 1..(N-2), answering §4's open question analytically.
func PredictBestBlock(cfg machine.Config, n int64) int64 {
	best, bestT := int64(1), PredictMakespan(cfg, n, 1)
	for b := int64(2); b <= n-2; b++ {
		if t := PredictMakespan(cfg, n, b); t < bestT {
			best, bestT = b, t
		}
	}
	return best
}
