// Package bench is the experiment harness that regenerates every figure and
// table of the paper's evaluation (§4, Figs. 6 and 7, footnote 3) plus the
// ablations the text discusses (block-size choice, loop interchange). Each
// experiment compiles the Gauss-Seidel program of Fig. 1 under one of the
// code-generation variants, runs it on the simulated iPSC/2-like machine,
// and reports simulated execution time (makespan) and message statistics.
package bench

import (
	"fmt"

	"procdecomp/internal/exec"
	"procdecomp/internal/istruct"
	"procdecomp/internal/lang"
	"procdecomp/internal/machine"
	"procdecomp/internal/sem"
	"procdecomp/internal/spmd"
	"procdecomp/internal/wavefront"
)

// GSSource is the Gauss-Seidel program of the paper's Fig. 1, in Idn. The
// grid size N is overridden per experiment.
const GSSource = `
-- Gauss-Seidel relaxation in normal order (paper Fig. 1), columns wrapped
-- around the machine's ring of processors (§2.3).
const N = 128;
const c = 0.25;

dist Column = cyclic_cols(NPROCS);

proc init_boundary(New: matrix[N, N] on Column) {
  for j = 1 to N {
    New[1, j] = 1.0;
    New[N, j] = 1.0;
  }
  for i = 2 to N - 1 {
    New[i, 1] = 1.0;
    New[i, N] = 1.0;
  }
}

proc gs_iteration(Old: matrix[N, N] on Column): matrix[N, N] on Column {
  let New = matrix(N, N) on Column;
  call init_boundary(New);
  for j = 2 to N - 1 {
    for i = 2 to N - 1 {
      New[i, j] = c * (New[i - 1, j] + New[i, j - 1] + Old[i + 1, j] + Old[i, j + 1]);
    }
  }
  return New;
}
`

// GSReversedSource is the §4 interchange scenario: the same computation with
// the i and j loops reversed, which hides the wavefront from the
// column-oriented pipeline.
const GSReversedSource = `
const N = 128;
const c = 0.25;

dist Column = cyclic_cols(NPROCS);

proc init_boundary(New: matrix[N, N] on Column) {
  for j = 1 to N {
    New[1, j] = 1.0;
    New[N, j] = 1.0;
  }
  for i = 2 to N - 1 {
    New[i, 1] = 1.0;
    New[i, N] = 1.0;
  }
}

proc gs_iteration(Old: matrix[N, N] on Column): matrix[N, N] on Column {
  let New = matrix(N, N) on Column;
  call init_boundary(New);
  for i = 2 to N - 1 {
    for j = 2 to N - 1 {
      New[i, j] = c * (New[i - 1, j] + New[i, j - 1] + Old[i + 1, j] + Old[i, j + 1]);
    }
  }
  return New;
}
`

// Variant selects the code-generation strategy under measurement.
type Variant int

// The six curves of Figs. 6 and 7.
const (
	RunTime      Variant = iota // §3.1 run-time resolution
	CompileTime                 // §3.2 compile-time resolution
	OptimizedI                  // + vectorized old-column messages (A.2)
	OptimizedII                 // + loop jamming / pipelining (A.3)
	OptimizedIII                // + strip-mined blocks (A.4)
	Handwritten                 // the Fig. 3 program
)

func (v Variant) String() string {
	switch v {
	case RunTime:
		return "run-time resolution"
	case CompileTime:
		return "compile-time resolution"
	case OptimizedI:
		return "optimized I (vectorized)"
	case OptimizedII:
		return "optimized II (pipelined)"
	case OptimizedIII:
		return "optimized III (blocked)"
	case Handwritten:
		return "handwritten"
	}
	return fmt.Sprintf("Variant(%d)", int(v))
}

// AllVariants lists every curve in presentation order.
var AllVariants = []Variant{RunTime, CompileTime, OptimizedI, OptimizedII, OptimizedIII, Handwritten}

// Point is one measurement.
type Point struct {
	Variant  Variant
	Procs    int
	N        int64
	BlkSize  int64
	Makespan machine.Cost
	Messages int64
	Values   int64
	Bytes    int64
}

// Input builds the deterministic Old matrix used by every experiment.
func Input(n int64) *istruct.Matrix {
	m, err := istruct.NewMatrix("Old", n, n)
	if err != nil {
		panic(err)
	}
	for i := int64(1); i <= n; i++ {
		for j := int64(1); j <= n; j++ {
			if err := m.Write(i, j, float64((i*31+j*17)%29)+0.5); err != nil {
				panic(err)
			}
		}
	}
	return m
}

// checkGS parses and checks a Gauss-Seidel source for a machine size and
// grid size.
func checkGS(src string, procs int, n int64) (*sem.Info, error) {
	prog, err := lang.Parse(src)
	if err != nil {
		return nil, err
	}
	info, errs := sem.Check(prog, sem.Config{Procs: int64(procs), Defines: map[string]int64{"N": n}})
	if len(errs) > 0 {
		return nil, errs[0]
	}
	return info, nil
}

// CompileGS compiles the Fig. 1 program under a variant, dispatching through
// the exported registry. For Handwritten it returns nil (RunGS dispatches to
// the wavefront package instead).
func CompileGS(v Variant, procs int, n, blk int64) ([]*spmd.Program, error) {
	spec, ok := SpecOf(v)
	if !ok {
		return nil, fmt.Errorf("bench: variant %v has no registry entry", v)
	}
	return spec.Compile(procs, n, blk)
}

// RunGS measures one configuration on the default (iPSC/2-like) machine.
// The result matrix is validated against the sequential reference before
// reporting (an experiment that computes the wrong answer reports an error,
// not a time).
func RunGS(v Variant, procs int, n, blk int64) (*Point, error) {
	return RunGSWith(machine.DefaultConfig(procs), v, n, blk)
}

// RunGSWith measures one configuration on an explicit machine calibration
// (used by the shared-memory ablation).
func RunGSWith(cfg machine.Config, v Variant, n, blk int64) (*Point, error) {
	procs := cfg.Procs
	input := Input(n)

	var stats machine.Stats
	var result *istruct.Matrix
	if v == Handwritten {
		res, err := wavefront.Run(cfg, n, blk, input)
		if err != nil {
			return nil, err
		}
		stats, result = res.Stats, res.New
	} else {
		progs, err := CompileGS(v, procs, n, blk)
		if err != nil {
			return nil, err
		}
		out, err := exec.RunSPMD(progs, cfg, map[string]*istruct.Matrix{"Old": Input(n)})
		if err != nil {
			return nil, err
		}
		stats, result = out.Stats, out.Arrays["New"]
	}

	if err := validateGS(procs, n, result); err != nil {
		return nil, fmt.Errorf("%v (procs=%d, n=%d, blk=%d): %w", v, procs, n, blk, err)
	}
	return &Point{
		Variant: v, Procs: procs, N: n, BlkSize: blk,
		Makespan: stats.Makespan, Messages: stats.Messages,
		Values: stats.Values, Bytes: stats.Bytes,
	}, nil
}

// validateGS compares a distributed result with the sequential reference.
func validateGS(procs int, n int64, got *istruct.Matrix) error {
	info, err := checkGS(GSSource, procs, n)
	if err != nil {
		return err
	}
	out, err := exec.RunSequential(info, "gs_iteration", []exec.ArgVal{{Matrix: Input(n)}})
	if err != nil {
		return err
	}
	want := out.Ret.Matrix
	for i := int64(1); i <= n; i++ {
		for j := int64(1); j <= n; j++ {
			dw, dg := want.Defined(i, j), got.Defined(i, j)
			if dw != dg {
				return fmt.Errorf("definedness mismatch at (%d,%d)", i, j)
			}
			if !dw {
				continue
			}
			vw, _ := want.Read(i, j)
			vg, _ := got.Read(i, j)
			if diff := vw - vg; diff > 1e-9 || diff < -1e-9 {
				return fmt.Errorf("value mismatch at (%d,%d): %g vs %g", i, j, vg, vw)
			}
		}
	}
	return nil
}
