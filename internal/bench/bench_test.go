package bench

import (
	"fmt"
	"strings"
	"testing"

	"procdecomp/internal/machine"
)

func TestRunGSAllVariantsSmall(t *testing.T) {
	for _, v := range AllVariants {
		pt, err := RunGS(v, 4, 16, 4)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if pt.Makespan == 0 {
			t.Errorf("%v: zero makespan", v)
		}
		if v != RunTime && v != CompileTime && pt.Messages == 0 {
			t.Errorf("%v: zero messages", v)
		}
	}
}

func TestMessageCountsScaleWithFormulas(t *testing.T) {
	const n = 16
	const blk = 4
	want := map[Variant]int64{
		RunTime:     2 * (n - 2) * (n - 2),
		CompileTime: 2 * (n - 2) * (n - 2),
		OptimizedI:  (n-2)*(n-2) + (n - 2),
		OptimizedII: (n-2)*(n-2) + (n - 2),
		OptimizedIII: func() int64 {
			blocks := int64((n - 2 + blk - 1) / blk)
			return (n-2)*blocks + (n - 2)
		}(),
		Handwritten: func() int64 {
			blocks := int64((n - 2 + blk - 1) / blk)
			return (n-2)*blocks + (n - 2)
		}(),
	}
	for v, w := range want {
		pt, err := RunGS(v, 4, n, blk)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if pt.Messages != w {
			t.Errorf("%v: messages = %d, want %d", v, pt.Messages, w)
		}
	}
}

func TestOptimizedIIIMatchesHandwrittenMessages(t *testing.T) {
	// The compiled Optimized III program must exchange exactly as many
	// messages as the handwritten Fig. 3 program.
	a, err := RunGS(OptimizedIII, 4, 32, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunGS(Handwritten, 4, 32, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a.Messages != b.Messages {
		t.Errorf("OptIII %d messages vs handwritten %d", a.Messages, b.Messages)
	}
}

func TestFigure6ShapeSmall(t *testing.T) {
	s, err := Figure6(24, []int{2, 8}, 4)
	if err != nil {
		t.Fatal(err)
	}
	out := s.Format()
	for _, want := range []string{"run-time resolution", "handwritten", "S=2", "S=8"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure 6 output missing %q:\n%s", want, out)
		}
	}
	if len(s.Rows) != 5 {
		t.Errorf("rows = %d, want 5", len(s.Rows))
	}
}

func TestFigure7OrderingSmall(t *testing.T) {
	// At 8 processors the optimization staircase must hold.
	const n = 32
	get := func(v Variant) uint64 {
		pt, err := RunGS(v, 8, n, 4)
		if err != nil {
			t.Fatal(err)
		}
		return pt.Makespan
	}
	i, ii, iii := get(OptimizedI), get(OptimizedII), get(OptimizedIII)
	if !(i > ii && ii > iii) {
		t.Errorf("expected OptI > OptII > OptIII, got %d, %d, %d", i, ii, iii)
	}
}

func TestBlockSizeSweepSmall(t *testing.T) {
	s, err := BlockSizeSweep([]int64{16, 32}, []int64{1, 4, 14}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rows) != 2 || len(s.Rows[0]) != 5 {
		t.Errorf("unexpected sweep shape: %v", s.Rows)
	}
	// A middling block size should beat blocksize 1 (too many messages).
	// The "best" column must name one of the sweep values.
	best := s.Rows[1][len(s.Rows[1])-1]
	if best != "1" && best != "4" && best != "14" {
		t.Errorf("best column = %q", best)
	}
}

func TestInterchangeAblationSmall(t *testing.T) {
	s, err := InterchangeAblation(24, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rows) != 2 {
		t.Fatalf("rows = %d", len(s.Rows))
	}
}

func TestMessageTableSmall(t *testing.T) {
	s, err := MessageTable(16, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rows) != len(AllVariants) {
		t.Errorf("rows = %d, want %d", len(s.Rows), len(AllVariants))
	}
}

func TestValidationCatchesCorruption(t *testing.T) {
	// validateGS must reject a wrong result.
	got := Input(16) // the input is not the GS output
	if err := validateGS(2, 16, got); err == nil {
		t.Error("validation accepted a wrong matrix")
	}
}

// The analytic block-size model (the paper's open §4 question) must be
// accurate enough to act on: running Optimized III at the predicted block
// size costs at most 15% more than the best block size found empirically.
func TestPredictBestBlockNearOptimal(t *testing.T) {
	for _, n := range []int64{32, 64, 128} {
		const procs = 8
		cfg := machine.DefaultConfig(procs)
		pred := PredictBestBlock(cfg, n)

		best := uint64(0)
		for b := int64(1); b <= n-2; b *= 2 {
			pt, err := RunGS(OptimizedIII, procs, n, b)
			if err != nil {
				t.Fatal(err)
			}
			if best == 0 || pt.Makespan < best {
				best = pt.Makespan
			}
		}
		atPred, err := RunGS(OptimizedIII, procs, n, pred)
		if err != nil {
			t.Fatal(err)
		}
		if float64(atPred.Makespan) > 1.15*float64(best) {
			t.Errorf("N=%d: predicted blk=%d gives %d, empirical best %d (>15%% off)",
				n, pred, atPred.Makespan, best)
		}
	}
}

// The model must reproduce the qualitative law: the best block size grows
// with the matrix size.
func TestPredictedBlockGrowsWithN(t *testing.T) {
	cfg := machine.DefaultConfig(8)
	prev := int64(0)
	for _, n := range []int64{32, 64, 128, 256, 512} {
		b := PredictBestBlock(cfg, n)
		if b < prev {
			t.Errorf("predicted block shrank: N=%d gives %d after %d", n, b, prev)
		}
		prev = b
	}
}

func TestSharedMemoryAblationRuns(t *testing.T) {
	s, err := SharedMemoryAblation(24, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rows) != 5 {
		t.Fatalf("rows = %d", len(s.Rows))
	}
}

func TestUtilizationTable(t *testing.T) {
	s, err := UtilizationTable(24, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rows) != len(AllVariants) {
		t.Fatalf("rows = %d", len(s.Rows))
	}
	// Optimized III must idle less than run-time resolution.
	a, _, err := TraceGS(RunTime, 4, 24, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := TraceGS(OptimizedIII, 4, 24, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	var idleA, idleB machine.Cost
	for _, x := range a.Breakdown {
		idleA += x.Idle
	}
	for _, x := range b.Breakdown {
		idleB += x.Idle
	}
	if idleB >= idleA {
		t.Errorf("OptIII idle %d should be far below RTR idle %d", idleB, idleA)
	}
}

func TestLoadBalanceTable(t *testing.T) {
	s, err := LoadBalanceTable(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rows) != 2 {
		t.Fatalf("rows = %d", len(s.Rows))
	}
	// Blocks must exchange fewer messages (edges only); wrapping must have
	// the lower compute imbalance. Parse the cells back.
	var blockMsgs, cyclicMsgs int64
	fmt.Sscanf(s.Rows[0][2], "%d", &blockMsgs)
	fmt.Sscanf(s.Rows[1][2], "%d", &cyclicMsgs)
	if blockMsgs >= cyclicMsgs {
		t.Errorf("blocks should communicate less: %d vs %d", blockMsgs, cyclicMsgs)
	}
}

func TestMultiplexTable(t *testing.T) {
	s, err := MultiplexTable(2, 24, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rows) != 5 {
		t.Fatalf("rows = %d", len(s.Rows))
	}
	// Every decomposition must exchange the same messages (the column
	// traffic depends on N and blk, not on S for this program).
	for _, row := range s.Rows[1:] {
		if row[3] != s.Rows[0][3] {
			t.Errorf("message counts differ across decompositions: %v", s.Rows)
		}
	}
}
