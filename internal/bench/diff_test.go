package bench

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"procdecomp/internal/analysis"
	"procdecomp/internal/faults"
	"procdecomp/internal/machine"
	"procdecomp/internal/trace"
)

// The tentpole's proof obligation: every Fig. 6 code-generation variant, at
// S ∈ {1, 4, 8, 32}, with and without a seeded chaos schedule, behaves
// bit-identically on the goroutine machine and the event-loop engine —
// equal Stats (makespan, Breakdown, transport counters) and byte-for-byte
// identical trace dumps including wire events and MsgSeq.
func TestEnginesBitIdentical(t *testing.T) {
	sizes := []struct {
		procs int
		n     int64
	}{{1, 16}, {4, 24}, {8, 24}, {32, 48}}
	for _, sz := range sizes {
		for _, v := range AllVariants {
			for _, chaotic := range []bool{false, true} {
				sz, v, chaotic := sz, v, chaotic
				t.Run(fmt.Sprintf("S%d/%v/chaos=%v", sz.procs, v, chaotic), func(t *testing.T) {
					t.Parallel()
					cfg := machine.DefaultConfig(sz.procs)
					if chaotic {
						cfg.Faults = faults.Chaos(42, 0.10)
					}
					if err := CompareEngines(cfg, v, sz.n, 4); err != nil {
						t.Error(err)
					}
				})
			}
		}
	}
}

// runBody captures a raw machine body under one calibration, for the
// differential cases the Fig. 6 matrix does not reach (placement,
// bounded mailboxes, cost perturbations).
func runBody(cfg machine.Config, body func(p *machine.Proc)) (*EngineRun, error) {
	tr := trace.New()
	cfg.Tracer = tr
	m := machine.New(cfg)
	if err := m.Run(body); err != nil {
		return nil, err
	}
	st, err := m.Stats()
	if err != nil {
		return nil, err
	}
	return &EngineRun{Stats: st, Dump: analysis.NewDump(cfg, tr)}, nil
}

func diffBody(t *testing.T, gcfg machine.Config, body func(p *machine.Proc)) error {
	t.Helper()
	ecfg := gcfg
	gcfg.Engine = machine.EngineGoroutine
	ecfg.Engine = machine.EngineEvent
	g, err := runBody(gcfg, body)
	if err != nil {
		t.Fatalf("goroutine engine: %v", err)
	}
	e, err := runBody(ecfg, body)
	if err != nil {
		t.Fatalf("event engine: %v", err)
	}
	return DiffRuns("goroutine", g, "event", e)
}

// Multiplexed placement and bounded mailboxes exercise scheduling paths the
// SPMD programs do not; the engines must agree there too.
func TestEnginesAgreeOnMuxAndCaps(t *testing.T) {
	ring := func(p *machine.Proc) {
		right := (p.ID() + 1) % 6
		left := (p.ID() + 5) % 6
		for k := 0; k < 5; k++ {
			p.Compute(machine.Cost(13*p.ID() + 7))
			if p.ID()%2 == 0 {
				p.Send(right, 1, float64(k))
				p.Recv(left, 2)
			} else {
				p.Recv(left, 1)
				p.Send(right, 2, float64(k))
			}
		}
	}
	mux := machine.DefaultConfig(6)
	mux.Placement = []int{0, 1, 0, 1, 0, 1}
	if err := diffBody(t, mux, ring); err != nil {
		t.Errorf("multiplexed: %v", err)
	}

	capped := machine.DefaultConfig(2)
	capped.MailboxCap = 2
	if err := diffBody(t, capped, func(p *machine.Proc) {
		if p.ID() == 0 {
			for k := 0; k < 8; k++ {
				p.Send(1, 1, float64(k))
			}
		} else {
			p.Compute(5000)
			for k := 0; k < 8; k++ {
				p.Recv(0, 1)
			}
		}
	}); err != nil {
		t.Errorf("bounded mailboxes: %v", err)
	}
}

// Failed runs are compared by error class: the goroutine engine races which
// of several simultaneous failures wins, so only the classification is
// stable across engines.
func TestEnginesAgreeOnWatchdogClass(t *testing.T) {
	sched := &faults.Schedule{Crash: map[int]uint64{0: 50}}
	for _, engine := range []machine.Engine{machine.EngineGoroutine, machine.EngineEvent} {
		cfg := machine.DefaultConfig(2)
		cfg.Engine = engine
		cfg.Faults = sched
		m := machine.New(cfg)
		err := m.Run(func(p *machine.Proc) {
			if p.ID() == 0 {
				p.Compute(1000)
				p.Send(1, 5, 1.0)
			} else {
				p.Recv(0, 5)
			}
		})
		if !errors.Is(err, machine.ErrRecvTimeout) {
			t.Errorf("%s engine: err = %v, want recv timeout", engine, err)
		}
	}
}

// Harness self-test: a deliberately perturbed cost table must make the
// comparison fail. One extra cycle of link latency moves the makespan by
// exactly one unit on a single ping — the smallest divergence there is —
// and the harness must catch it.
func TestEngineDiffDetectsOneCycleDivergence(t *testing.T) {
	ping := func(p *machine.Proc) {
		if p.ID() == 0 {
			p.Send(1, 1, 1.0)
		} else {
			p.Recv(0, 1)
		}
	}
	gcfg := machine.DefaultConfig(2)
	gcfg.Engine = machine.EngineGoroutine
	ecfg := gcfg
	ecfg.Engine = machine.EngineEvent

	g, err := runBody(gcfg, ping)
	if err != nil {
		t.Fatal(err)
	}
	e, err := runBody(ecfg, ping)
	if err != nil {
		t.Fatal(err)
	}
	if err := DiffRuns("goroutine", g, "event", e); err != nil {
		t.Fatalf("identical calibrations diverge: %v", err)
	}

	ecfg.Latency++
	e2, err := runBody(ecfg, ping)
	if err != nil {
		t.Fatal(err)
	}
	if e2.Stats.Makespan != g.Stats.Makespan+1 {
		t.Fatalf("perturbed makespan %d, want exactly %d+1", e2.Stats.Makespan, g.Stats.Makespan)
	}
	err = DiffRuns("goroutine", g, "event", e2)
	if err == nil {
		t.Fatal("one-cycle makespan divergence went undetected")
	}
	if !strings.Contains(err.Error(), "makespan diverges") {
		t.Errorf("divergence misreported: %v", err)
	}
}

// Harness self-test at the Fig. 6 level: perturbing the cost table of one
// side makes the full variant comparison fail.
func TestEngineDiffDetectsPerturbedCostTable(t *testing.T) {
	gcfg := machine.DefaultConfig(4)
	gcfg.Engine = machine.EngineGoroutine
	ecfg := gcfg
	ecfg.Engine = machine.EngineEvent
	ecfg.OpCost++
	if err := CompareEngineConfigs(gcfg, ecfg, OptimizedIII, 16, 4); err == nil {
		t.Fatal("perturbed cost table went undetected")
	}
}
