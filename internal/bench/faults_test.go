package bench

import (
	"testing"

	"procdecomp/internal/faults"
	"procdecomp/internal/machine"
)

// TestFaultsAllVariantsSameResults runs every Fig. 6 variant — interpreted
// run-time resolution, compile-time residues, the three optimization levels,
// and the handwritten wavefront — under a seeded chaos schedule (10% drops,
// duplicates, ack loss, jitter) and checks that each computes exactly the
// fault-free answer. RunGSWith validates the result matrix against the
// sequential reference, so a single wrong value fails the run; here we
// additionally pin the message accounting to the fault-free run and require
// the fault tax to be visible in the makespan.
func TestFaultsAllVariantsSameResults(t *testing.T) {
	const (
		procs = 4
		n     = 24
		blk   = 4
	)
	for _, v := range AllVariants {
		clean, err := RunGS(v, procs, n, blk)
		if err != nil {
			t.Fatalf("%v fault-free: %v", v, err)
		}
		cfg := machine.DefaultConfig(procs)
		cfg.Faults = faults.Chaos(42, 0.10)
		chaotic, err := RunGSWith(cfg, v, n, blk)
		if err != nil {
			t.Fatalf("%v under chaos(42, 0.10): %v", v, err)
		}
		if chaotic.Messages != clean.Messages || chaotic.Values != clean.Values {
			t.Errorf("%v: message accounting changed under faults: got %d msgs/%d vals, want %d/%d",
				v, chaotic.Messages, chaotic.Values, clean.Messages, clean.Values)
		}
		if chaotic.Makespan < clean.Makespan {
			t.Errorf("%v: chaos makespan %d below fault-free %d", v, chaotic.Makespan, clean.Makespan)
		}
	}
}

// TestFaultsVariantDeterminism: a chaos measurement is reproducible — the
// whole point of the seed-driven schedule.
func TestFaultsVariantDeterminism(t *testing.T) {
	run := func() *Point {
		cfg := machine.DefaultConfig(4)
		cfg.Faults = faults.Chaos(7, 0.08)
		pt, err := RunGSWith(cfg, OptimizedIII, 24, 4)
		if err != nil {
			t.Fatal(err)
		}
		return pt
	}
	a, b := run(), run()
	if *a != *b {
		t.Errorf("same seed, different measurements:\n%+v\n%+v", a, b)
	}
}
