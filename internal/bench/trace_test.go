package bench

import (
	"bytes"
	"encoding/json"
	"testing"

	"procdecomp/internal/faults"
	"procdecomp/internal/machine"
	"procdecomp/internal/trace"
)

// assertReconciles checks the acceptance property event by event: every
// process's traced durations must sum exactly to the machine's Breakdown
// partition, and compute + comm + idle must equal the final clock.
func assertReconciles(t *testing.T, label string, procs int, n, blk int64, v Variant, placement []int) *trace.Log {
	t.Helper()
	st, tr, err := TraceGS(v, procs, n, blk, placement)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	if tr.Len() == 0 {
		t.Fatalf("%s: empty trace", label)
	}
	for i, b := range st.Breakdown {
		s := tr.Sums(i)
		if s.Compute != b.Compute {
			t.Errorf("%s proc %d: traced compute %d != breakdown %d", label, i, s.Compute, b.Compute)
		}
		if s.Comm != b.Comm {
			t.Errorf("%s proc %d: traced comm %d != breakdown %d", label, i, s.Comm, b.Comm)
		}
		if s.Idle+s.Blocked != b.Idle {
			t.Errorf("%s proc %d: traced idle %d + blocked %d != breakdown idle %d",
				label, i, s.Idle, s.Blocked, b.Idle)
		}
		if b.Compute+b.Comm+b.Idle != st.ProcTimes[i] {
			t.Errorf("%s proc %d: breakdown does not tile the clock: %d+%d+%d != %d",
				label, i, b.Compute, b.Comm, b.Idle, st.ProcTimes[i])
		}
		if s.Total() != st.ProcTimes[i] {
			t.Errorf("%s proc %d: traced total %d != clock %d", label, i, s.Total(), st.ProcTimes[i])
		}
	}
	if tr.Messages() != st.Messages {
		t.Errorf("%s: trace messages %d != machine %d", label, tr.Messages(), st.Messages)
	}
	return tr
}

// The Fig. 6 workload's event traces must reconcile exactly with the
// Breakdown partition on the direct path, for the compiled variants and the
// handwritten baseline alike.
func TestTraceReconcilesFig6Direct(t *testing.T) {
	for _, v := range []Variant{RunTime, CompileTime, OptimizedIII, Handwritten} {
		assertReconciles(t, v.String(), 4, 24, 4, v, nil)
	}
}

// Same property on the multiplexed (Config.Placement / muxRecv) path, where
// blocked-for-CPU spans join the partition.
func TestTraceReconcilesFig6Placement(t *testing.T) {
	// 8 virtual processes cyclically placed on 4 nodes.
	placement := []int{0, 1, 2, 3, 0, 1, 2, 3}
	tr := assertReconciles(t, "optIII multiplexed", 8, 24, 4, OptimizedIII, placement)
	if !tr.Multiplexed() {
		t.Error("log does not know the run was multiplexed")
	}
	var blocked uint64
	for p := 0; p < tr.Procs(); p++ {
		blocked += tr.Sums(p).Blocked
	}
	if blocked == 0 {
		t.Error("co-resident processes never contended for a CPU; placement path untested")
	}
}

// The hardest tracing path: multiplexed placement and an unreliable network
// at once (mux scheduling, reliable-transport retries, blocked-for-CPU spans
// all active). The trace must still reconcile exactly — Sums against the
// Breakdown, Totals against the per-process sums, and the pattern analyses
// (MessageMatrix, TagHistogram) against the machine's message counters.
func TestTraceReconcilesPlacementChaos(t *testing.T) {
	cfg := machine.DefaultConfig(8)
	cfg.Placement = []int{0, 1, 2, 3, 0, 1, 2, 3}
	cfg.Faults = faults.Chaos(7, 0.05)
	st, tr, err := TraceGSWith(cfg, OptimizedIII, 24, 4)
	if err != nil {
		t.Fatal(err)
	}
	if st.Retries == 0 {
		t.Error("chaos schedule caused no retries; fault path untested")
	}
	var tot trace.Partition
	for i, b := range st.Breakdown {
		s := tr.Sums(i)
		if s.Compute != b.Compute || s.Comm != b.Comm || s.Idle+s.Blocked != b.Idle {
			t.Errorf("proc %d: traced %+v does not reconcile with breakdown %+v", i, s, b)
		}
		if s.Total() != st.ProcTimes[i] {
			t.Errorf("proc %d: traced total %d != clock %d", i, s.Total(), st.ProcTimes[i])
		}
		tot.Compute += s.Compute
		tot.Comm += s.Comm
		tot.Idle += s.Idle
		tot.Blocked += s.Blocked
	}
	if tr.Totals() != tot {
		t.Errorf("Totals %+v != summed per-process partitions %+v", tr.Totals(), tot)
	}
	var matrixMsgs int64
	for _, row := range tr.MessageMatrix() {
		for _, c := range row {
			matrixMsgs += c
		}
	}
	if matrixMsgs != st.Messages {
		t.Errorf("message matrix sums to %d, machine counted %d", matrixMsgs, st.Messages)
	}
	var tagMsgs, tagVals int64
	for _, ts := range tr.TagHistogram() {
		tagMsgs += ts.Messages
		tagVals += ts.Values
	}
	if tagMsgs != st.Messages || tagVals != st.Values {
		t.Errorf("tag histogram sums to %d msgs / %d values, machine counted %d / %d",
			tagMsgs, tagVals, st.Messages, st.Values)
	}
}

// The wavefront run's trace opens in Chrome/Perfetto: valid trace-event JSON
// whose span count matches the log.
func TestTraceFig6ChromeExport(t *testing.T) {
	_, tr, err := TraceGS(Handwritten, 4, 24, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Ph string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	spans := 0
	for _, e := range parsed.TraceEvents {
		if e.Ph == "X" {
			spans++
		}
	}
	if spans != tr.Len() {
		t.Errorf("exported %d spans, log holds %d", spans, tr.Len())
	}
}

// The communication pattern of the wavefront is a ring: every processor
// sends only to its left and right neighbours.
func TestTraceWavefrontRingPattern(t *testing.T) {
	const procs = 4
	_, tr, err := TraceGS(Handwritten, procs, 24, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := tr.MessageMatrix()
	for src := 0; src < procs; src++ {
		left := (src + procs - 1) % procs
		right := (src + 1) % procs
		for dst := 0; dst < procs; dst++ {
			if m[src][dst] > 0 && dst != left && dst != right {
				t.Errorf("non-neighbour traffic %d -> %d (%d messages)", src, dst, m[src][dst])
			}
		}
	}
	// Both logical channels (old columns, new-value blocks) must appear.
	h := tr.TagHistogram()
	if len(h) < 2 {
		t.Errorf("tag histogram = %v, want the wavefront's two channels", h)
	}
}
