package bench

import "testing"

// The headline reproduction: footnote 3's exact message counts on the
// paper's own configuration — a 128×128 grid, blocks of 8.
func TestFootnote3Exact(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale run")
	}
	const n, blk = 128, 8
	cases := []struct {
		v    Variant
		want int64
	}{
		{RunTime, 31752},     // "31,752 messages for the run-time resolution code"
		{CompileTime, 31752}, // "It exchanges as many messages as the run-time version" (§4)
		{OptimizedIII, 2142}, // the compiled code matches the handwritten count
		{Handwritten, 2142},  // "versus 2142 messages for the handwritten code"
	}
	for _, tc := range cases {
		pt, err := RunGS(tc.v, 8, n, blk)
		if err != nil {
			t.Fatalf("%v: %v", tc.v, err)
		}
		if pt.Messages != tc.want {
			t.Errorf("%v: messages = %d, want %d (paper footnote 3)", tc.v, pt.Messages, tc.want)
		}
		// Whatever the packaging, all variants move the same values.
		if pt.Values != 31752 {
			t.Errorf("%v: values moved = %d, want 31752", tc.v, pt.Values)
		}
	}
}

// The closed forms behind the counts, checked across grid sizes.
func TestMessageClosedForms(t *testing.T) {
	for _, n := range []int64{12, 20, 32} {
		const blk = 4
		m := n - 2
		blocks := (m + blk - 1) / blk
		rtr, err := RunGS(RunTime, 4, n, blk)
		if err != nil {
			t.Fatal(err)
		}
		if rtr.Messages != 2*m*m {
			t.Errorf("N=%d: RTR messages = %d, want 2(N-2)^2 = %d", n, rtr.Messages, 2*m*m)
		}
		o3, err := RunGS(OptimizedIII, 4, n, blk)
		if err != nil {
			t.Fatal(err)
		}
		if want := m*blocks + m; o3.Messages != want {
			t.Errorf("N=%d: OptIII messages = %d, want (N-2)·ceil((N-2)/B)+(N-2) = %d", n, o3.Messages, want)
		}
	}
}
