package bench

// Differential harness for the simulator cores. The event-loop engine
// (machine.EngineEvent) replaced the goroutines+condvar machine as the
// default; the old engine stays available behind Config.Engine precisely so
// this harness can prove the two are observably identical — equal Stats
// (makespans, Breakdowns, message and transport counters) and byte-for-byte
// identical trace dumps, wire events and MsgSeq included — on every Fig. 6
// code-generation variant, with and without seeded chaos. Only once this
// evidence exists (and stays in CI as the engine benchmark's baseline) can
// the goroutine engine be deleted.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"

	"procdecomp/internal/analysis"
	"procdecomp/internal/exec"
	"procdecomp/internal/istruct"
	"procdecomp/internal/machine"
	"procdecomp/internal/trace"
	"procdecomp/internal/wavefront"
)

// EngineRun is one traced run's complete observable behavior: the machine's
// statistics and the canonical trace dump (per-process event spans plus the
// sorted wire stream).
type EngineRun struct {
	Stats machine.Stats
	Dump  *analysis.Dump
}

// RunVariant executes one Fig. 6 configuration traced on the given machine
// and captures everything observable about the run. The result matrix is not
// re-validated here — the harness compares behavior, not answers (the
// benchmark tests already pin the answers).
func RunVariant(cfg machine.Config, v Variant, n, blk int64) (*EngineRun, error) {
	tr := trace.New()
	cfg.Tracer = tr
	var stats machine.Stats
	if v == Handwritten {
		res, err := wavefront.Run(cfg, n, blk, Input(n))
		if err != nil {
			return nil, err
		}
		stats = res.Stats
	} else {
		progs, err := CompileGS(v, cfg.Procs, n, blk)
		if err != nil {
			return nil, err
		}
		out, err := exec.RunSPMD(progs, cfg, map[string]*istruct.Matrix{"Old": Input(n)})
		if err != nil {
			return nil, err
		}
		stats = out.Stats
	}
	return &EngineRun{Stats: stats, Dump: analysis.NewDump(cfg, tr)}, nil
}

// CompareEngines runs one Fig. 6 configuration under both simulator cores
// and reports the first observable divergence, if any.
func CompareEngines(cfg machine.Config, v Variant, n, blk int64) error {
	gcfg, ecfg := cfg, cfg
	gcfg.Engine = machine.EngineGoroutine
	ecfg.Engine = machine.EngineEvent
	return CompareEngineConfigs(gcfg, ecfg, v, n, blk)
}

// CompareEngineConfigs runs the same Fig. 6 configuration on two explicit
// machine calibrations and demands identical observable behavior. Callers
// normally pass the same calibration with only Engine flipped; the harness's
// self-test instead perturbs one cost table to prove a divergence as small
// as one cycle is caught.
func CompareEngineConfigs(cfgA, cfgB machine.Config, v Variant, n, blk int64) error {
	a, err := RunVariant(cfgA, v, n, blk)
	if err != nil {
		return fmt.Errorf("bench: %s engine: %w", cfgA.Engine, err)
	}
	b, err := RunVariant(cfgB, v, n, blk)
	if err != nil {
		return fmt.Errorf("bench: %s engine: %w", cfgB.Engine, err)
	}
	return DiffRuns(cfgA.Engine.String(), a, cfgB.Engine.String(), b)
}

// DiffRuns compares two captured runs: Stats must be deeply equal and the
// JSON-serialized dumps byte-identical. The dump comparison covers every
// compute/send/recv/blocked span of every process and the canonically sorted
// wire stream (time, src, dst, MsgSeq, attempt, kind), so any reordering,
// re-stamping or re-numbering between the engines surfaces here.
func DiffRuns(nameA string, a *EngineRun, nameB string, b *EngineRun) error {
	if a.Stats.Makespan != b.Stats.Makespan {
		return fmt.Errorf("bench: makespan diverges: %s %d, %s %d",
			nameA, a.Stats.Makespan, nameB, b.Stats.Makespan)
	}
	if !reflect.DeepEqual(a.Stats, b.Stats) {
		return fmt.Errorf("bench: stats diverge:\n  %s: %+v\n  %s: %+v",
			nameA, a.Stats, nameB, b.Stats)
	}
	ja, err := json.Marshal(a.Dump)
	if err != nil {
		return err
	}
	jb, err := json.Marshal(b.Dump)
	if err != nil {
		return err
	}
	if !bytes.Equal(ja, jb) {
		return fmt.Errorf("bench: trace dumps diverge between %s and %s:\n%s", nameA, nameB, firstJSONDiff(ja, jb))
	}
	return nil
}

// firstJSONDiff renders a short window around the first differing byte, so a
// dump divergence is diagnosable without dumping megabytes.
func firstJSONDiff(a, b []byte) string {
	i := 0
	for i < len(a) && i < len(b) && a[i] == b[i] {
		i++
	}
	window := func(s []byte) string {
		lo, hi := i-60, i+60
		if lo < 0 {
			lo = 0
		}
		if hi > len(s) {
			hi = len(s)
		}
		return string(s[lo:hi])
	}
	return fmt.Sprintf("  first divergence at byte %d:\n  ...%s...\n  ...%s...", i, window(a), window(b))
}
