// Package dist implements domain decompositions: the <map, local, alloc>
// triples of the paper's §2.3 that describe how arrays (and scalars) are
// distributed across the processors of a message-passing machine.
//
// A decomposition provides both a concrete view — which processor owns a
// given element, where the element lives in that processor's local storage,
// and how big the local allocation is — and a symbolic view used by
// compile-time resolution, which needs the mapping as an expression over the
// program's index variables (e.g. "(j) mod S" for wrapped columns).
//
// Global indices are 1-based, following the paper's programs
// (matrix(N,N) is indexed 1..N); local indices are 1-based as well.
// Processors are numbered 0..P-1.
package dist

import (
	"fmt"

	"procdecomp/internal/expr"
)

// All is the pseudo-processor returned by Owner for replicated data: every
// processor owns a copy (the paper's "a:ALL" mapping).
const All int64 = -1

// Kind identifies the decomposition family.
type Kind int

// Decomposition families.
const (
	KindCyclicCols Kind = iota // column j on processor j mod S ("wrapped" columns)
	KindCyclicRows             // row i on processor i mod S
	KindBlockCols              // contiguous column blocks
	KindBlockRows              // contiguous row blocks
	KindBlock2D                // 2-D processor grid, 2-D blocks
	KindReplicated             // a copy on every processor (ALL)
	KindSingle                 // everything on one processor (a:P1)
	KindCyclicVec              // vector element i on processor i mod S
	KindBlockVec               // contiguous vector blocks
)

func (k Kind) String() string {
	switch k {
	case KindCyclicCols:
		return "cyclic_cols"
	case KindCyclicRows:
		return "cyclic_rows"
	case KindBlockCols:
		return "block_cols"
	case KindBlockRows:
		return "block_rows"
	case KindBlock2D:
		return "block2d"
	case KindReplicated:
		return "all"
	case KindSingle:
		return "single"
	case KindCyclicVec:
		return "cyclic"
	case KindBlockVec:
		return "block"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// A Dist is a bound domain decomposition: a mapping family instantiated with
// a machine size and a global array shape.
type Dist interface {
	// Kind reports the decomposition family.
	Kind() Kind
	// Procs reports the number of processors the decomposition targets.
	Procs() int64
	// GlobalShape reports the global array dimensions ([] for a scalar).
	GlobalShape() []int64
	// Owner returns the processor owning the element at idx, or All when the
	// data is replicated. This is the paper's "map" function.
	Owner(idx []int64) int64
	// Local translates a global index to the owner's local index. This is the
	// paper's "local" function.
	Local(idx []int64) []int64
	// LocalShape reports the per-processor allocation dimensions. This is the
	// paper's "alloc" function.
	LocalShape() []int64
	// SymbolicOwner builds the mapping expression over symbolic indices, for
	// use by the evaluators/participants analysis. Replicated decompositions
	// have no single owner; callers must test Kind first.
	SymbolicOwner(idx []expr.Expr) expr.Expr
	// SymbolicLocal builds the local-index expressions over symbolic indices.
	SymbolicLocal(idx []expr.Expr) []expr.Expr
	// String renders a short human-readable description.
	String() string
}

func checkRank(what string, idx []int64, want int) {
	if len(idx) != want {
		panic(fmt.Sprintf("dist: %s applied to index of rank %d, want %d", what, len(idx), want))
	}
}

// ceilDiv returns ceil(a/b) for positive a, b.
func ceilDiv(a, b int64) int64 { return (a + b - 1) / b }

// --- cyclic (wrapped) columns: the paper's running decomposition ---

type cyclicCols struct {
	procs int64
	shape []int64 // rows, cols
}

// NewCyclicCols wraps the columns of a rows×cols matrix around a ring of
// procs processors "like a dealer deals cards": column j lives on processor
// j mod procs (§2.3).
func NewCyclicCols(procs int64, rows, cols int64) Dist {
	mustPositive(procs, rows, cols)
	return cyclicCols{procs: procs, shape: []int64{rows, cols}}
}

func (d cyclicCols) Kind() Kind           { return KindCyclicCols }
func (d cyclicCols) Procs() int64         { return d.procs }
func (d cyclicCols) GlobalShape() []int64 { return []int64{d.shape[0], d.shape[1]} }
func (d cyclicCols) String() string {
	return fmt.Sprintf("cyclic_cols(S=%d, %dx%d)", d.procs, d.shape[0], d.shape[1])
}

func (d cyclicCols) Owner(idx []int64) int64 {
	checkRank("cyclic_cols.Owner", idx, 2)
	return expr.EucMod(idx[1], d.procs)
}

func (d cyclicCols) Local(idx []int64) []int64 {
	checkRank("cyclic_cols.Local", idx, 2)
	return []int64{idx[0], (idx[1]-1)/d.procs + 1}
}

func (d cyclicCols) LocalShape() []int64 {
	return []int64{d.shape[0], ceilDiv(d.shape[1], d.procs)}
}

func (d cyclicCols) SymbolicOwner(idx []expr.Expr) expr.Expr {
	checkRank("cyclic_cols.SymbolicOwner", make([]int64, len(idx)), 2)
	return expr.Mod(idx[1], expr.C(d.procs))
}

func (d cyclicCols) SymbolicLocal(idx []expr.Expr) []expr.Expr {
	return []expr.Expr{idx[0], expr.Add(expr.Div(expr.Sub(idx[1], expr.C(1)), expr.C(d.procs)), expr.C(1))}
}

// --- cyclic (wrapped) rows ---

type cyclicRows struct {
	procs int64
	shape []int64
}

// NewCyclicRows wraps the rows of a rows×cols matrix around a ring: row i
// lives on processor i mod procs.
func NewCyclicRows(procs int64, rows, cols int64) Dist {
	mustPositive(procs, rows, cols)
	return cyclicRows{procs: procs, shape: []int64{rows, cols}}
}

func (d cyclicRows) Kind() Kind           { return KindCyclicRows }
func (d cyclicRows) Procs() int64         { return d.procs }
func (d cyclicRows) GlobalShape() []int64 { return []int64{d.shape[0], d.shape[1]} }
func (d cyclicRows) String() string {
	return fmt.Sprintf("cyclic_rows(S=%d, %dx%d)", d.procs, d.shape[0], d.shape[1])
}

func (d cyclicRows) Owner(idx []int64) int64 {
	checkRank("cyclic_rows.Owner", idx, 2)
	return expr.EucMod(idx[0], d.procs)
}

func (d cyclicRows) Local(idx []int64) []int64 {
	checkRank("cyclic_rows.Local", idx, 2)
	return []int64{(idx[0]-1)/d.procs + 1, idx[1]}
}

func (d cyclicRows) LocalShape() []int64 {
	return []int64{ceilDiv(d.shape[0], d.procs), d.shape[1]}
}

func (d cyclicRows) SymbolicOwner(idx []expr.Expr) expr.Expr {
	return expr.Mod(idx[0], expr.C(d.procs))
}

func (d cyclicRows) SymbolicLocal(idx []expr.Expr) []expr.Expr {
	return []expr.Expr{expr.Add(expr.Div(expr.Sub(idx[0], expr.C(1)), expr.C(d.procs)), expr.C(1)), idx[1]}
}

// --- block columns ---

type blockCols struct {
	procs int64
	shape []int64
	width int64
}

// NewBlockCols assigns contiguous blocks of ceil(cols/procs) columns to each
// processor in order.
func NewBlockCols(procs int64, rows, cols int64) Dist {
	mustPositive(procs, rows, cols)
	return blockCols{procs: procs, shape: []int64{rows, cols}, width: ceilDiv(cols, procs)}
}

func (d blockCols) Kind() Kind           { return KindBlockCols }
func (d blockCols) Procs() int64         { return d.procs }
func (d blockCols) GlobalShape() []int64 { return []int64{d.shape[0], d.shape[1]} }
func (d blockCols) String() string {
	return fmt.Sprintf("block_cols(S=%d, %dx%d)", d.procs, d.shape[0], d.shape[1])
}

func (d blockCols) Owner(idx []int64) int64 {
	checkRank("block_cols.Owner", idx, 2)
	return (idx[1] - 1) / d.width
}

func (d blockCols) Local(idx []int64) []int64 {
	checkRank("block_cols.Local", idx, 2)
	return []int64{idx[0], expr.EucMod(idx[1]-1, d.width) + 1}
}

func (d blockCols) LocalShape() []int64 { return []int64{d.shape[0], d.width} }

func (d blockCols) SymbolicOwner(idx []expr.Expr) expr.Expr {
	return expr.Div(expr.Sub(idx[1], expr.C(1)), expr.C(d.width))
}

func (d blockCols) SymbolicLocal(idx []expr.Expr) []expr.Expr {
	return []expr.Expr{idx[0], expr.Add(expr.Mod(expr.Sub(idx[1], expr.C(1)), expr.C(d.width)), expr.C(1))}
}

// --- block rows ---

type blockRows struct {
	procs int64
	shape []int64
	width int64
}

// NewBlockRows assigns contiguous blocks of ceil(rows/procs) rows to each
// processor in order.
func NewBlockRows(procs int64, rows, cols int64) Dist {
	mustPositive(procs, rows, cols)
	return blockRows{procs: procs, shape: []int64{rows, cols}, width: ceilDiv(rows, procs)}
}

func (d blockRows) Kind() Kind           { return KindBlockRows }
func (d blockRows) Procs() int64         { return d.procs }
func (d blockRows) GlobalShape() []int64 { return []int64{d.shape[0], d.shape[1]} }
func (d blockRows) String() string {
	return fmt.Sprintf("block_rows(S=%d, %dx%d)", d.procs, d.shape[0], d.shape[1])
}

func (d blockRows) Owner(idx []int64) int64 {
	checkRank("block_rows.Owner", idx, 2)
	return (idx[0] - 1) / d.width
}

func (d blockRows) Local(idx []int64) []int64 {
	checkRank("block_rows.Local", idx, 2)
	return []int64{expr.EucMod(idx[0]-1, d.width) + 1, idx[1]}
}

func (d blockRows) LocalShape() []int64 { return []int64{d.width, d.shape[1]} }

func (d blockRows) SymbolicOwner(idx []expr.Expr) expr.Expr {
	return expr.Div(expr.Sub(idx[0], expr.C(1)), expr.C(d.width))
}

func (d blockRows) SymbolicLocal(idx []expr.Expr) []expr.Expr {
	return []expr.Expr{expr.Add(expr.Mod(expr.Sub(idx[0], expr.C(1)), expr.C(d.width)), expr.C(1)), idx[1]}
}

// --- 2-D blocks over a processor grid ---

type block2D struct {
	pr, pc int64 // processor grid dimensions; proc id = r*pc + c
	shape  []int64
	hr, wc int64 // block height, width
}

// NewBlock2D decomposes a rows×cols matrix into 2-D blocks over a pr×pc
// processor grid; element (i,j) lives on processor
// ((i-1) div blockRows)·pc + ((j-1) div blockCols).
func NewBlock2D(pr, pc int64, rows, cols int64) Dist {
	mustPositive(pr, rows, cols)
	mustPositive(pc, rows, cols)
	return block2D{pr: pr, pc: pc, shape: []int64{rows, cols},
		hr: ceilDiv(rows, pr), wc: ceilDiv(cols, pc)}
}

func (d block2D) Kind() Kind           { return KindBlock2D }
func (d block2D) Procs() int64         { return d.pr * d.pc }
func (d block2D) GlobalShape() []int64 { return []int64{d.shape[0], d.shape[1]} }
func (d block2D) String() string {
	return fmt.Sprintf("block2d(%dx%d procs, %dx%d)", d.pr, d.pc, d.shape[0], d.shape[1])
}

func (d block2D) Owner(idx []int64) int64 {
	checkRank("block2d.Owner", idx, 2)
	return ((idx[0]-1)/d.hr)*d.pc + (idx[1]-1)/d.wc
}

func (d block2D) Local(idx []int64) []int64 {
	checkRank("block2d.Local", idx, 2)
	return []int64{expr.EucMod(idx[0]-1, d.hr) + 1, expr.EucMod(idx[1]-1, d.wc) + 1}
}

func (d block2D) LocalShape() []int64 { return []int64{d.hr, d.wc} }

func (d block2D) SymbolicOwner(idx []expr.Expr) expr.Expr {
	r := expr.Div(expr.Sub(idx[0], expr.C(1)), expr.C(d.hr))
	c := expr.Div(expr.Sub(idx[1], expr.C(1)), expr.C(d.wc))
	return expr.Add(expr.Mul(r, expr.C(d.pc)), c)
}

func (d block2D) SymbolicLocal(idx []expr.Expr) []expr.Expr {
	return []expr.Expr{
		expr.Add(expr.Mod(expr.Sub(idx[0], expr.C(1)), expr.C(d.hr)), expr.C(1)),
		expr.Add(expr.Mod(expr.Sub(idx[1], expr.C(1)), expr.C(d.wc)), expr.C(1)),
	}
}

// --- replicated (ALL) ---

type replicated struct {
	procs int64
	shape []int64
}

// NewReplicated places a full copy of the data on every processor; shape may
// be empty for a scalar (the paper's "a:ALL").
func NewReplicated(procs int64, shape ...int64) Dist {
	mustPositive(procs)
	s := make([]int64, len(shape))
	copy(s, shape)
	return replicated{procs: procs, shape: s}
}

func (d replicated) Kind() Kind           { return KindReplicated }
func (d replicated) Procs() int64         { return d.procs }
func (d replicated) GlobalShape() []int64 { return append([]int64(nil), d.shape...) }
func (d replicated) String() string       { return "all" }

func (d replicated) Owner(idx []int64) int64   { return All }
func (d replicated) Local(idx []int64) []int64 { return append([]int64(nil), idx...) }
func (d replicated) LocalShape() []int64       { return append([]int64(nil), d.shape...) }

func (d replicated) SymbolicOwner(idx []expr.Expr) expr.Expr {
	panic("dist: replicated data has no single owner; test Kind() first")
}

func (d replicated) SymbolicLocal(idx []expr.Expr) []expr.Expr {
	return append([]expr.Expr(nil), idx...)
}

// --- single processor ---

type single struct {
	procs int64
	p     int64
	shape []int64
}

// NewSingle places the data (a scalar when shape is empty, or a whole array)
// on the given processor: the paper's "a:P1" mapping.
func NewSingle(procs, p int64, shape ...int64) Dist {
	mustPositive(procs)
	if p < 0 || p >= procs {
		panic(fmt.Sprintf("dist: processor %d out of range [0,%d)", p, procs))
	}
	s := make([]int64, len(shape))
	copy(s, shape)
	return single{procs: procs, p: p, shape: s}
}

func (d single) Kind() Kind           { return KindSingle }
func (d single) Procs() int64         { return d.procs }
func (d single) GlobalShape() []int64 { return append([]int64(nil), d.shape...) }
func (d single) String() string       { return fmt.Sprintf("proc(%d)", d.p) }

func (d single) Owner(idx []int64) int64   { return d.p }
func (d single) Local(idx []int64) []int64 { return append([]int64(nil), idx...) }
func (d single) LocalShape() []int64       { return append([]int64(nil), d.shape...) }

func (d single) SymbolicOwner(idx []expr.Expr) expr.Expr { return expr.C(d.p) }

func (d single) SymbolicLocal(idx []expr.Expr) []expr.Expr {
	return append([]expr.Expr(nil), idx...)
}

// ProcOf exposes the fixed processor of a single-processor decomposition.
func ProcOf(d Dist) (int64, bool) {
	s, ok := d.(single)
	if !ok {
		return 0, false
	}
	return s.p, true
}

func mustPositive(vs ...int64) {
	for _, v := range vs {
		if v <= 0 {
			panic(fmt.Sprintf("dist: parameter must be positive, got %d", v))
		}
	}
}

// --- 1-D distributions for vectors ---

type cyclicVec struct {
	procs int64
	n     int64
}

// NewCyclicVec wraps the elements of a length-n vector around the ring:
// element i lives on processor i mod procs.
func NewCyclicVec(procs, n int64) Dist {
	mustPositive(procs, n)
	return cyclicVec{procs: procs, n: n}
}

func (d cyclicVec) Kind() Kind           { return KindCyclicVec }
func (d cyclicVec) Procs() int64         { return d.procs }
func (d cyclicVec) GlobalShape() []int64 { return []int64{d.n} }
func (d cyclicVec) String() string {
	return fmt.Sprintf("cyclic(S=%d, len %d)", d.procs, d.n)
}

func (d cyclicVec) Owner(idx []int64) int64 {
	checkRank("cyclic.Owner", idx, 1)
	return expr.EucMod(idx[0], d.procs)
}

func (d cyclicVec) Local(idx []int64) []int64 {
	checkRank("cyclic.Local", idx, 1)
	return []int64{(idx[0]-1)/d.procs + 1}
}

func (d cyclicVec) LocalShape() []int64 { return []int64{ceilDiv(d.n, d.procs)} }

func (d cyclicVec) SymbolicOwner(idx []expr.Expr) expr.Expr {
	return expr.Mod(idx[0], expr.C(d.procs))
}

func (d cyclicVec) SymbolicLocal(idx []expr.Expr) []expr.Expr {
	return []expr.Expr{expr.Add(expr.Div(expr.Sub(idx[0], expr.C(1)), expr.C(d.procs)), expr.C(1))}
}

type blockVec struct {
	procs int64
	n     int64
	width int64
}

// NewBlockVec assigns contiguous blocks of ceil(n/procs) vector elements to
// each processor in order.
func NewBlockVec(procs, n int64) Dist {
	mustPositive(procs, n)
	return blockVec{procs: procs, n: n, width: ceilDiv(n, procs)}
}

func (d blockVec) Kind() Kind           { return KindBlockVec }
func (d blockVec) Procs() int64         { return d.procs }
func (d blockVec) GlobalShape() []int64 { return []int64{d.n} }
func (d blockVec) String() string {
	return fmt.Sprintf("block(S=%d, len %d)", d.procs, d.n)
}

func (d blockVec) Owner(idx []int64) int64 {
	checkRank("block.Owner", idx, 1)
	return (idx[0] - 1) / d.width
}

func (d blockVec) Local(idx []int64) []int64 {
	checkRank("block.Local", idx, 1)
	return []int64{expr.EucMod(idx[0]-1, d.width) + 1}
}

func (d blockVec) LocalShape() []int64 { return []int64{d.width} }

func (d blockVec) SymbolicOwner(idx []expr.Expr) expr.Expr {
	return expr.Div(expr.Sub(idx[0], expr.C(1)), expr.C(d.width))
}

func (d blockVec) SymbolicLocal(idx []expr.Expr) []expr.Expr {
	return []expr.Expr{expr.Add(expr.Mod(expr.Sub(idx[0], expr.C(1)), expr.C(d.width)), expr.C(1))}
}
