package dist

import (
	"fmt"
	"sort"
	"strings"
)

// Kinds lists every decomposition family in declaration order. It is the
// canonical enumeration for flag parsing, search-space construction, and the
// round-trip tests that keep Parse and Kind.String inverses of each other.
func Kinds() []Kind {
	return []Kind{
		KindCyclicCols, KindCyclicRows, KindBlockCols, KindBlockRows,
		KindBlock2D, KindReplicated, KindSingle, KindCyclicVec, KindBlockVec,
	}
}

// Parse is the inverse of Kind.String: it resolves a decomposition family by
// its canonical name ("cyclic_cols", "block2d", "all", ...), so command-line
// tools can take -dist flags by name. The match is case-insensitive; an
// unknown name lists the valid ones in the error.
func Parse(s string) (Kind, error) {
	want := strings.ToLower(strings.TrimSpace(s))
	for _, k := range Kinds() {
		if k.String() == want {
			return k, nil
		}
	}
	names := make([]string, 0, len(Kinds()))
	for _, k := range Kinds() {
		names = append(names, k.String())
	}
	sort.Strings(names)
	return 0, fmt.Errorf("dist: unknown decomposition %q (want one of %s)", s, strings.Join(names, ", "))
}
