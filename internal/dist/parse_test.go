package dist

import (
	"fmt"
	"strings"
	"testing"
)

// Parse must be the exact inverse of Kind.String over every family, so
// command-line -dist flags round-trip without a parallel name table drifting.
func TestParseRoundTrip(t *testing.T) {
	seen := map[string]Kind{}
	for _, k := range Kinds() {
		name := k.String()
		if strings.HasPrefix(name, "Kind(") {
			t.Fatalf("kind %d has no canonical name", int(k))
		}
		if prev, dup := seen[name]; dup {
			t.Fatalf("kinds %v and %v share the name %q", prev, k, name)
		}
		seen[name] = k
		got, err := Parse(name)
		if err != nil {
			t.Fatalf("Parse(%q): %v", name, err)
		}
		if got != k {
			t.Errorf("Parse(%q) = %v, want %v", name, got, k)
		}
		// Case and surrounding space are forgiven — flags come from humans.
		if got, err := Parse("  " + strings.ToUpper(name) + " "); err != nil || got != k {
			t.Errorf("Parse(%q uppercased) = %v, %v; want %v", name, got, err, k)
		}
	}
	if len(seen) != len(Kinds()) {
		t.Fatalf("Kinds() lists %d kinds, %d unique names", len(Kinds()), len(seen))
	}
}

func TestParseUnknown(t *testing.T) {
	for _, bad := range []string{"", "diagonal", "cyclic_colz", "Kind(3)"} {
		if k, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) = %v, want error", bad, k)
		} else if !strings.Contains(err.Error(), "cyclic_cols") {
			t.Errorf("Parse(%q) error %q does not list valid names", bad, err)
		}
	}
}

// Property: every bound decomposition partitions its global index space —
// each element has exactly one owner in [0, P), its local index lies inside
// the local allocation, and no two global indices collide on the same
// (owner, local) slot. Replicated data is the stated exception: every owner
// is All and local is the identity. Exercised across the machine sizes the
// acceptance suite cares about (S ∈ {1,2,4,32}) and shapes that do not
// divide evenly.
func TestPartitionPropertyAcrossSizes(t *testing.T) {
	sizes := []int64{1, 2, 4, 32}
	shapes := [][2]int64{{7, 13}, {33, 9}, {32, 32}, {1, 40}}
	for _, s := range sizes {
		for _, sh := range shapes {
			rows, cols := sh[0], sh[1]
			ds := []Dist{
				NewCyclicCols(s, rows, cols),
				NewCyclicRows(s, rows, cols),
				NewBlockCols(s, rows, cols),
				NewBlockRows(s, rows, cols),
				NewSingle(s, s-1, rows, cols),
				NewReplicated(s, rows, cols),
			}
			for pr := int64(1); pr <= s; pr++ {
				if s%pr == 0 {
					ds = append(ds, NewBlock2D(pr, s/pr, rows, cols))
				}
			}
			for _, d := range ds {
				checkMatrixPartition(t, d, s, rows, cols)
			}
			// Vector families, on a deliberately non-divisible length.
			n := rows*cols - 1
			for _, d := range []Dist{NewCyclicVec(s, n), NewBlockVec(s, n)} {
				checkVecPartition(t, d, s, n)
			}
		}
	}
}

func checkMatrixPartition(t *testing.T, d Dist, procs, rows, cols int64) {
	t.Helper()
	ls := d.LocalShape()
	slots := map[string]bool{}
	for i := int64(1); i <= rows; i++ {
		for j := int64(1); j <= cols; j++ {
			idx := []int64{i, j}
			p := d.Owner(idx)
			if d.Kind() == KindReplicated {
				if p != All {
					t.Fatalf("%v: replicated owner(%v) = %d, want All", d, idx, p)
				}
				continue
			}
			if p < 0 || p >= procs {
				t.Fatalf("%v: owner(%v) = %d outside [0,%d)", d, idx, p, procs)
			}
			l := d.Local(idx)
			if len(l) != len(ls) {
				t.Fatalf("%v: local rank %d != alloc rank %d", d, len(l), len(ls))
			}
			for k := range l {
				if l[k] < 1 || l[k] > ls[k] {
					t.Fatalf("%v: local(%v) = %v outside alloc %v", d, idx, l, ls)
				}
			}
			key := fmt.Sprintf("%d/%v", p, l)
			if slots[key] {
				t.Fatalf("%v: two global indices own slot %s", d, key)
			}
			slots[key] = true
		}
	}
	if d.Kind() != KindReplicated && int64(len(slots)) != rows*cols {
		t.Fatalf("%v: %d slots for %d elements", d, len(slots), rows*cols)
	}
}

func checkVecPartition(t *testing.T, d Dist, procs, n int64) {
	t.Helper()
	ls := d.LocalShape()
	slots := map[string]bool{}
	for i := int64(1); i <= n; i++ {
		p := d.Owner([]int64{i})
		if p < 0 || p >= procs {
			t.Fatalf("%v: owner(%d) = %d outside [0,%d)", d, i, p, procs)
		}
		l := d.Local([]int64{i})
		if l[0] < 1 || l[0] > ls[0] {
			t.Fatalf("%v: local(%d) = %v outside alloc %v", d, i, l, ls)
		}
		key := fmt.Sprintf("%d/%d", p, l[0])
		if slots[key] {
			t.Fatalf("%v: two elements own slot %s", d, key)
		}
		slots[key] = true
	}
	if int64(len(slots)) != n {
		t.Fatalf("%v: %d slots for %d elements", d, len(slots), n)
	}
}
