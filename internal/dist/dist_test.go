package dist

import (
	"fmt"
	"math/rand"
	"testing"

	"procdecomp/internal/expr"
)

// allDists builds one instance of every non-scalar decomposition family for a
// given machine and matrix size.
func allDists(procs, rows, cols int64) []Dist {
	ds := []Dist{
		NewCyclicCols(procs, rows, cols),
		NewCyclicRows(procs, rows, cols),
		NewBlockCols(procs, rows, cols),
		NewBlockRows(procs, rows, cols),
		NewSingle(procs, procs-1, rows, cols),
	}
	// A near-square processor grid for block2d.
	for pr := procs; pr >= 1; pr-- {
		if procs%pr == 0 {
			ds = append(ds, NewBlock2D(pr, procs/pr, rows, cols))
			break
		}
	}
	return ds
}

// Property: every element has exactly one owner in range, its local index is
// within the local allocation, and (owner, local) is injective.
func TestOwnershipPartition(t *testing.T) {
	configs := []struct{ procs, rows, cols int64 }{
		{1, 5, 5}, {2, 8, 8}, {3, 7, 10}, {4, 16, 16}, {5, 9, 13}, {8, 8, 8},
	}
	for _, cfg := range configs {
		for _, d := range allDists(cfg.procs, cfg.rows, cfg.cols) {
			seen := map[string]bool{}
			ls := d.LocalShape()
			for i := int64(1); i <= cfg.rows; i++ {
				for j := int64(1); j <= cfg.cols; j++ {
					idx := []int64{i, j}
					p := d.Owner(idx)
					if p < 0 || p >= d.Procs() {
						t.Fatalf("%v: owner(%v) = %d out of range", d, idx, p)
					}
					l := d.Local(idx)
					if len(l) != len(ls) {
						t.Fatalf("%v: local rank %d != alloc rank %d", d, len(l), len(ls))
					}
					for k := range l {
						if l[k] < 1 || l[k] > ls[k] {
							t.Fatalf("%v: local(%v) = %v outside alloc %v", d, idx, l, ls)
						}
					}
					key := fmt.Sprintf("%d/%v", p, l)
					if seen[key] {
						t.Fatalf("%v: (owner, local) collision at %v", d, idx)
					}
					seen[key] = true
				}
			}
		}
	}
}

// Property: the symbolic owner/local expressions agree with the concrete
// functions on every element.
func TestSymbolicAgreesWithConcrete(t *testing.T) {
	iv, jv := expr.V("i"), expr.V("j")
	sym := []expr.Expr{iv, jv}
	for _, d := range allDists(4, 11, 13) {
		so := d.SymbolicOwner(sym)
		sl := d.SymbolicLocal(sym)
		for i := int64(1); i <= 11; i++ {
			for j := int64(1); j <= 13; j++ {
				env := expr.Env{"i": i, "j": j}
				if got, want := so.MustEval(env), d.Owner([]int64{i, j}); got != want {
					t.Fatalf("%v: symbolic owner(%d,%d) = %d, want %d", d, i, j, got, want)
				}
				loc := d.Local([]int64{i, j})
				for k := range sl {
					if got := sl[k].MustEval(env); got != loc[k] {
						t.Fatalf("%v: symbolic local[%d](%d,%d) = %d, want %d", d, k, i, j, got, loc[k])
					}
				}
			}
		}
	}
}

func TestCyclicColsMatchesPaper(t *testing.T) {
	// §2.3: "column j is assigned to processor j mod s".
	d := NewCyclicCols(4, 8, 8)
	for j := int64(1); j <= 8; j++ {
		if got := d.Owner([]int64{3, j}); got != j%4 {
			t.Errorf("owner of column %d = %d, want %d", j, got, j%4)
		}
	}
	// Owner is independent of the row.
	for i := int64(1); i <= 8; i++ {
		if d.Owner([]int64{i, 5}) != 1 {
			t.Errorf("owner of column 5 depends on row %d", i)
		}
	}
	// Col-alloc(N, N) = matrix(N, N/S) for S | N.
	ls := d.LocalShape()
	if ls[0] != 8 || ls[1] != 2 {
		t.Errorf("LocalShape = %v, want [8 2]", ls)
	}
}

func TestCyclicColsSymbolicOwnerShape(t *testing.T) {
	// The mapping of A[i, j+1] must be ((j + 1) mod 4): the expression the
	// paper gives in §3.2 for a matrix mapped by column.
	d := NewCyclicCols(4, 8, 8)
	e := d.SymbolicOwner([]expr.Expr{expr.V("i"), expr.Add(expr.V("j"), expr.C(1))})
	if e.String() != "((j + 1) mod 4)" {
		t.Errorf("symbolic owner = %q, want ((j + 1) mod 4)", e)
	}
	inner, s, ok := expr.AsMod(e)
	if !ok || s != 4 || !inner.Equal(expr.Add(expr.V("j"), expr.C(1))) {
		t.Errorf("AsMod decomposition failed: %v %v %v", inner, s, ok)
	}
}

func TestBlockColsContiguity(t *testing.T) {
	d := NewBlockCols(4, 8, 16)
	// Owners must be non-decreasing in j, with equal-width blocks of 4.
	prev := int64(0)
	for j := int64(1); j <= 16; j++ {
		p := d.Owner([]int64{1, j})
		if p < prev {
			t.Fatalf("block owners not monotone at column %d", j)
		}
		if want := (j - 1) / 4; p != want {
			t.Fatalf("owner(col %d) = %d, want %d", j, p, want)
		}
		prev = p
	}
}

func TestBlock2DGrid(t *testing.T) {
	d := NewBlock2D(2, 3, 6, 9) // 2x3 proc grid, 3x3 blocks
	if d.Procs() != 6 {
		t.Fatalf("Procs = %d, want 6", d.Procs())
	}
	if got := d.Owner([]int64{1, 1}); got != 0 {
		t.Errorf("owner(1,1) = %d, want 0", got)
	}
	if got := d.Owner([]int64{4, 1}); got != 3 {
		t.Errorf("owner(4,1) = %d, want 3", got)
	}
	if got := d.Owner([]int64{6, 9}); got != 5 {
		t.Errorf("owner(6,9) = %d, want 5", got)
	}
}

func TestReplicated(t *testing.T) {
	d := NewReplicated(4, 3, 3)
	if d.Owner([]int64{1, 1}) != All {
		t.Error("replicated owner should be All")
	}
	if d.Kind() != KindReplicated {
		t.Error("wrong kind")
	}
	l := d.Local([]int64{2, 3})
	if l[0] != 2 || l[1] != 3 {
		t.Errorf("replicated local should be identity, got %v", l)
	}
	defer func() {
		if recover() == nil {
			t.Error("SymbolicOwner on replicated should panic")
		}
	}()
	d.SymbolicOwner([]expr.Expr{expr.V("i"), expr.V("j")})
}

func TestSingleScalar(t *testing.T) {
	d := NewSingle(4, 2)
	if d.Owner(nil) != 2 {
		t.Errorf("owner = %d, want 2", d.Owner(nil))
	}
	if p, ok := ProcOf(d); !ok || p != 2 {
		t.Errorf("ProcOf = %d,%v", p, ok)
	}
	if e := d.SymbolicOwner(nil); !e.Equal(expr.C(2)) {
		t.Errorf("symbolic owner = %v, want 2", e)
	}
	if _, ok := ProcOf(NewReplicated(4)); ok {
		t.Error("ProcOf on replicated should report false")
	}
}

func TestSingleOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-range processor")
		}
	}()
	NewSingle(4, 4)
}

// Property: cyclic columns are balanced — per-processor column counts differ
// by at most one.
func TestCyclicBalance(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 50; iter++ {
		procs := int64(rng.Intn(7) + 1)
		cols := int64(rng.Intn(40) + 1)
		d := NewCyclicCols(procs, 4, cols)
		counts := make([]int64, procs)
		for j := int64(1); j <= cols; j++ {
			counts[d.Owner([]int64{1, j})]++
		}
		min, max := counts[0], counts[0]
		for _, c := range counts {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		if max-min > 1 {
			t.Fatalf("procs=%d cols=%d: unbalanced counts %v", procs, cols, counts)
		}
	}
}

// Property: local indices fit exactly — the alloc shape is no larger than
// needed (tight in each dimension for at least one processor).
func TestAllocTight(t *testing.T) {
	for _, d := range allDists(3, 9, 12) {
		if d.Kind() == KindReplicated {
			continue
		}
		ls := d.LocalShape()
		maxSeen := make([]int64, len(ls))
		for i := int64(1); i <= 9; i++ {
			for j := int64(1); j <= 12; j++ {
				l := d.Local([]int64{i, j})
				for k := range l {
					if l[k] > maxSeen[k] {
						maxSeen[k] = l[k]
					}
				}
			}
		}
		for k := range ls {
			if maxSeen[k] != ls[k] {
				t.Errorf("%v: alloc dim %d = %d but max used = %d", d, k, ls[k], maxSeen[k])
			}
		}
	}
}

func TestVectorDistributions(t *testing.T) {
	for _, d := range []Dist{NewCyclicVec(3, 10), NewBlockVec(3, 10)} {
		seen := map[string]bool{}
		ls := d.LocalShape()
		for i := int64(1); i <= 10; i++ {
			p := d.Owner([]int64{i})
			if p < 0 || p >= d.Procs() {
				t.Fatalf("%v: owner(%d) = %d out of range", d, i, p)
			}
			l := d.Local([]int64{i})
			if l[0] < 1 || l[0] > ls[0] {
				t.Fatalf("%v: local(%d) = %v outside alloc %v", d, i, l, ls)
			}
			key := fmt.Sprintf("%d/%d", p, l[0])
			if seen[key] {
				t.Fatalf("%v: collision at %d", d, i)
			}
			seen[key] = true
			// Symbolic agreement.
			env := expr.Env{"i": i}
			if got := d.SymbolicOwner([]expr.Expr{expr.V("i")}).MustEval(env); got != p {
				t.Fatalf("%v: symbolic owner(%d) = %d, want %d", d, i, got, p)
			}
			if got := d.SymbolicLocal([]expr.Expr{expr.V("i")})[0].MustEval(env); got != l[0] {
				t.Fatalf("%v: symbolic local(%d) = %d, want %d", d, i, got, l[0])
			}
		}
	}
	if NewCyclicVec(3, 10).Kind() != KindCyclicVec || NewBlockVec(3, 10).Kind() != KindBlockVec {
		t.Error("kinds wrong")
	}
}
