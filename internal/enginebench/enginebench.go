// Package enginebench is the engine differential benchmark behind CI's
// BENCH_engine.json artifact. It lives outside internal/bench because it
// times the pdmap smoke search, and autotune's own tests measure against
// internal/bench — importing autotune from bench would be a cycle.
package enginebench

// The benchmark times the two simulator cores against each other on three shapes:
//
//   - the pdmap smoke search (the CI integration check's exact workload),
//     which is dominated by parsing, compilation and the cost model — the
//     engines are near parity there, and the number is reported to keep the
//     comparison honest;
//   - a direct one-process-per-node Gauss-Seidel wavefront, where the
//     goroutine machine's per-blocking-point channel handoffs cost a small
//     constant factor;
//   - the §5.4 multiplexed Gauss-Seidel — many virtual processes
//     co-scheduled on few nodes — where the goroutine machine's condition-
//     variable broadcasts wake every resident on every scheduling decision
//     (O(S) per wake, O(S²) per admitted step) and the event loop's exact
//     (clock, id) heap pays O(log S). This is the engine-bound shape, it is
//     where simulation wall-clock actually goes at scale, and it is the
//     shape the CI gate thresholds.
//
// The gate fails the build if the event loop is not at least minSpeedup
// times faster than the goroutine baseline on the gated shape.

import (
	"fmt"
	"time"

	"procdecomp/internal/autotune"
	"procdecomp/internal/bench"
	"procdecomp/internal/exec"
	"procdecomp/internal/istruct"
	"procdecomp/internal/machine"
	"procdecomp/internal/wavefront"
)

// EngineShape is one timed comparison of the two simulator cores.
type EngineShape struct {
	Shape       string  `json:"shape"`
	GoroutineMS float64 `json:"goroutine_ms"`
	EventMS     float64 `json:"event_ms"`
	Speedup     float64 `json:"speedup"`
	// Gated marks the shape the CI threshold applies to.
	Gated bool `json:"gated"`
}

// EngineBenchReport is the BENCH_engine.json schema.
type EngineBenchReport struct {
	Shapes []EngineShape `json:"shapes"`
	// GateSpeedup is the speedup of the gated shape.
	GateSpeedup float64 `json:"gate_speedup"`
	MinSpeedup  float64 `json:"min_speedup"`
	Pass        bool    `json:"pass"`
}

// timeBoth runs f once per engine per repetition and keeps each engine's
// best wall-clock time. Every run is checked for success; the run's
// simulated behavior is identical across engines by the differential tests,
// so only wall-clock differs.
func timeBoth(reps int, f func(e machine.Engine) error) (goroutineMS, eventMS float64, err error) {
	best := map[machine.Engine]time.Duration{}
	for r := 0; r < reps; r++ {
		for _, e := range []machine.Engine{machine.EngineGoroutine, machine.EngineEvent} {
			start := time.Now()
			if err := f(e); err != nil {
				return 0, 0, fmt.Errorf("%s engine: %w", e, err)
			}
			d := time.Since(start)
			if cur, ok := best[e]; !ok || d < cur {
				best[e] = d
			}
		}
	}
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
	return ms(best[machine.EngineGoroutine]), ms(best[machine.EngineEvent]), nil
}

// RunEngineBench times the shapes and applies the gate.
func RunEngineBench(minSpeedup float64) (*EngineBenchReport, error) {
	rep := &EngineBenchReport{MinSpeedup: minSpeedup}
	add := func(shape string, gated bool, reps int, f func(e machine.Engine) error) error {
		g, ev, err := timeBoth(reps, f)
		if err != nil {
			return fmt.Errorf("enginebench: shape %q: %w", shape, err)
		}
		sp := 0.0
		if ev > 0 {
			sp = g / ev
		}
		rep.Shapes = append(rep.Shapes, EngineShape{
			Shape: shape, GoroutineMS: g, EventMS: ev, Speedup: sp, Gated: gated,
		})
		if gated {
			rep.GateSpeedup = sp
		}
		return nil
	}

	// Shape 1: the pdmap smoke search, exactly as CI runs it. Model-bound;
	// reported for honesty, not gated.
	smoke := func(e machine.Engine) error {
		w := &autotune.Workload{
			Name: "gauss-seidel", Source: bench.GSSource, Entry: "gs_iteration",
			Dist: "Column", Defines: map[string]int64{"N": 24},
		}
		cfg := machine.DefaultConfig(4)
		cfg.Engine = e
		_, err := autotune.Search(w, cfg, autotune.Options{Workers: 1})
		return err
	}
	if err := add("pdmap smoke search (Gauss-Seidel, S=4, N=24)", false, 2, smoke); err != nil {
		return nil, err
	}

	// Shape 2: direct wavefront, one process per node.
	direct := func(e machine.Engine) error {
		cfg := machine.DefaultConfig(64)
		cfg.Engine = e
		_, err := wavefront.Run(cfg, 256, 32, bench.Input(256))
		return err
	}
	if err := add("direct Gauss-Seidel wavefront (S=64, N=256, blk=32)", false, 2, direct); err != nil {
		return nil, err
	}

	// Shape 3 (gated): the §5.4 multiplexed decomposition — 64 virtual
	// processes cyclically placed on 4 nodes. Compilation happens outside
	// the timer; only the simulated run is measured.
	const (
		vprocs = 64
		nodes  = 4
		muxN   = 32
	)
	progs, err := bench.CompileGS(bench.OptimizedIII, vprocs, muxN, 4)
	if err != nil {
		return nil, err
	}
	placement := make([]int, vprocs)
	for i := range placement {
		placement[i] = i % nodes
	}
	mux := func(e machine.Engine) error {
		cfg := machine.DefaultConfig(vprocs)
		cfg.Placement = placement
		cfg.Engine = e
		_, err := exec.RunSPMD(progs, cfg, map[string]*istruct.Matrix{"Old": bench.Input(muxN)})
		return err
	}
	if err := add(fmt.Sprintf("multiplexed Gauss-Seidel (%d processes on %d nodes, N=%d, Optimized III)",
		vprocs, nodes, muxN), true, 2, mux); err != nil {
		return nil, err
	}

	rep.Pass = rep.GateSpeedup >= minSpeedup
	return rep, nil
}

// Format renders the report as a table.
func (r *EngineBenchReport) Format() string {
	s := &bench.Series{
		Title:   "engine differential benchmark: event loop vs goroutine baseline",
		Columns: []string{"shape", "goroutine ms", "event ms", "speedup", "gated"},
	}
	for _, sh := range r.Shapes {
		gate := ""
		if sh.Gated {
			gate = fmt.Sprintf("yes (min %.1fx)", r.MinSpeedup)
		}
		s.Rows = append(s.Rows, []string{
			sh.Shape,
			fmt.Sprintf("%.1f", sh.GoroutineMS),
			fmt.Sprintf("%.1f", sh.EventMS),
			fmt.Sprintf("%.1fx", sh.Speedup),
			gate,
		})
	}
	return s.Format()
}
