package adapt

import (
	"context"
	"encoding/json"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"
)

// testController builds a controller whose search is the given stub, with
// thresholds small enough for unit-length observation streams.
func testController(t *testing.T, fn func(ctx context.Context, tr *trigger) (searchResult, error), restored []State, startSeq uint64, hooks Hooks) *Controller {
	t.Helper()
	cfg := Config{Alpha: 0.5, ShiftAt: 0.6, MinObs: 4, Dwell: 3, Cooldown: 16, MinGain: 0.05}
	c := New(cfg, restored, startSeq, hooks)
	c.searchFn = fn
	return c
}

func obs(scenario, shape string) Observation {
	return Observation{Scenario: scenario, Shape: shape, Makespan: 100,
		Spec: SearchSpec{Source: "x", Entry: "e", Dist: "d", Procs: 2, Mode: "ctr"}}
}

// feed pushes n observations of one shape.
func feed(c *Controller, scenario, shape string, n int) {
	for i := 0; i < n; i++ {
		c.Observe(obs(scenario, shape))
	}
}

// waitIdle blocks until every triggered search has settled — the same
// Busy-polling contract the phase harness uses against GET /adapt.
func waitIdle(t *testing.T, c *Controller) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for c.Snapshot().Busy {
		if time.Now().After(deadline) {
			t.Fatal("controller never went idle")
		}
		time.Sleep(time.Millisecond)
	}
}

// A sustained shift triggers exactly one search — the dwell filters
// transients, the cooldown absorbs the aftermath — and a winning candidate
// switches the preference.
func TestShiftTriggersOnceAndSwitches(t *testing.T) {
	var mu sync.Mutex
	var decisions []Decision
	searches := 0
	c := testController(t, func(ctx context.Context, tr *trigger) (searchResult, error) {
		searches++
		return searchResult{Winner: "all", WinnerMakespan: 50, IncumbentMakespan: 100,
			MeasuredGain: 0.5, PredictedGain: 0.5, Enumerated: 7, Candidates: 7, Replayed: 3}, nil
	}, nil, 0, Hooks{Persist: func(d Decision) { mu.Lock(); decisions = append(decisions, d); mu.Unlock() }})

	feed(c, "s1", "N=16", 6) // anchor: tunedFor = N=16
	feed(c, "s1", "N=24", 30)
	waitIdle(t, c)
	c.Close()

	if searches != 1 {
		t.Fatalf("%d searches ran, want exactly 1 (dwell+cooldown hysteresis)", searches)
	}
	st := c.Stats()
	if st.Triggers != 1 || st.Switched != 1 || st.Held+st.Failed+st.Panicked+st.Canceled != 0 {
		t.Errorf("stats = %+v, want one trigger, one switch", st)
	}
	if got := c.Preferred("s1"); got != "all" {
		t.Errorf("Preferred = %q, want the stub winner", got)
	}
	if len(decisions) != 1 {
		t.Fatalf("%d decisions journaled, want 1", len(decisions))
	}
	d := decisions[0]
	if d.Seq != 1 || d.Scenario != "s1" || d.Shape != "N=24" || d.Outcome != "switched" ||
		d.Mapping != "all" || d.Incumbent != "" || d.Cause != "shift" {
		t.Errorf("decision = %+v", d)
	}
	if d.MeasuredGain != 0.5 || d.IncumbentMakespan != 100 || d.WinnerMakespan != 50 {
		t.Errorf("decision gains = %+v", d)
	}
}

// Steady traffic in the first-observed shape never triggers: the anchor pins
// tunedFor to what the scenario started with.
func TestUnshiftedTrafficNeverTriggers(t *testing.T) {
	c := testController(t, func(ctx context.Context, tr *trigger) (searchResult, error) {
		t.Error("search ran on unshifted traffic")
		return searchResult{}, nil
	}, nil, 0, Hooks{})
	feed(c, "s1", "N=16", 200)
	c.Close()
	if st := c.Stats(); st.Triggers != 0 || st.Observations != 200 {
		t.Errorf("stats = %+v, want 200 observations and no triggers", st)
	}
}

// A transient burst shorter than the dwell resets and never triggers.
func TestDwellFiltersTransients(t *testing.T) {
	c := testController(t, func(ctx context.Context, tr *trigger) (searchResult, error) {
		t.Error("search ran on a transient")
		return searchResult{}, nil
	}, nil, 0, Hooks{})
	feed(c, "s1", "N=16", 6)
	for i := 0; i < 10; i++ {
		feed(c, "s1", "N=24", 2) // dominant for <Dwell observations...
		feed(c, "s1", "N=16", 4) // ...then the old shape recovers
	}
	c.Close()
	if st := c.Stats(); st.Triggers != 0 {
		t.Errorf("transient bursts triggered %d searches", st.Triggers)
	}
}

// A search below the gain threshold holds the incumbent — and moves the
// tuning anchor, so the same shift cannot re-trigger and flap.
func TestHeldBelowGainMovesAnchor(t *testing.T) {
	searches := 0
	c := testController(t, func(ctx context.Context, tr *trigger) (searchResult, error) {
		searches++
		return searchResult{Winner: "all", WinnerMakespan: 99, IncumbentMakespan: 100, MeasuredGain: 0.01}, nil
	}, nil, 0, Hooks{})
	feed(c, "s1", "N=16", 6)
	feed(c, "s1", "N=24", 120) // far beyond one cooldown window
	waitIdle(t, c)
	c.Close()
	if searches != 1 {
		t.Fatalf("%d searches, want 1 — a held decision must not flap", searches)
	}
	if got := c.Preferred("s1"); got != "" {
		t.Errorf("Preferred = %q after held decision, want declared", got)
	}
	if st := c.Stats(); st.Held != 1 || st.Switched != 0 {
		t.Errorf("stats = %+v, want one held", st)
	}
}

// The decision sequence is a pure function of the observation sequence: two
// controllers fed the same stream journal byte-identical decisions.
func TestDecisionsAreDeterministic(t *testing.T) {
	run := func() []byte {
		var buf []byte
		c := testController(t, func(ctx context.Context, tr *trigger) (searchResult, error) {
			return searchResult{Winner: "all", WinnerMakespan: 40, IncumbentMakespan: 100,
				MeasuredGain: 0.6, PredictedGain: 1.0 / 3.0, Enumerated: 5, Candidates: 5, Replayed: 2}, nil
		}, nil, 0, Hooks{Persist: func(d Decision) {
			b, err := json.Marshal(d)
			if err != nil {
				t.Fatal(err)
			}
			buf = append(buf, b...)
			buf = append(buf, '\n')
		}})
		feed(c, "s1", "N=16", 5)
		feed(c, "s1", "N=24", 40)
		feed(c, "s2", "N=8", 5)
		feed(c, "s2", "N=12", 40)
		waitIdle(t, c)
		c.Close()
		return buf
	}
	a, b := run(), run()
	if string(a) != string(b) {
		t.Errorf("decision journals differ:\n%s\nvs\n%s", a, b)
	}
	if len(a) == 0 {
		t.Fatal("no decisions journaled")
	}
}

// A panicking search is isolated: the decision records the panic, the
// incumbent survives, and the controller keeps serving.
func TestSearchPanicIsolated(t *testing.T) {
	var decisions []Decision
	c := testController(t, func(ctx context.Context, tr *trigger) (searchResult, error) {
		panic("modeled candidate exploded")
	}, nil, 0, Hooks{Persist: func(d Decision) { decisions = append(decisions, d) }})
	feed(c, "s1", "N=16", 6)
	feed(c, "s1", "N=24", 30)
	waitIdle(t, c)
	c.Close()
	if st := c.Stats(); st.Panicked != 1 || st.Switched != 0 {
		t.Errorf("stats = %+v, want one panicked search", st)
	}
	if got := c.Preferred("s1"); got != "" {
		t.Errorf("Preferred = %q after panic, want incumbent kept", got)
	}
	if len(decisions) != 1 || decisions[0].Outcome != "panicked" {
		t.Fatalf("decisions = %+v, want one panicked", decisions)
	}
}

// Close cancels an in-flight search; the queued decision settles as
// canceled, Observe becomes a no-op, and nothing deadlocks.
func TestCloseCancelsInFlightSearch(t *testing.T) {
	started := make(chan struct{})
	var decisions []Decision
	c := testController(t, func(ctx context.Context, tr *trigger) (searchResult, error) {
		close(started)
		<-ctx.Done()
		return searchResult{}, ctx.Err()
	}, nil, 0, Hooks{Persist: func(d Decision) { decisions = append(decisions, d) }})
	feed(c, "s1", "N=16", 6)
	feed(c, "s1", "N=24", 30)
	<-started
	c.Close()
	if len(decisions) != 1 || decisions[0].Outcome != "canceled" {
		t.Fatalf("decisions = %+v, want one canceled", decisions)
	}
	if st := c.Stats(); st.Canceled != 1 {
		t.Errorf("stats = %+v, want one canceled", st)
	}
	c.Observe(obs("s1", "N=24")) // must be a silent no-op
	if c.Stats().Observations != 36 {
		t.Error("Observe advanced counters after Close")
	}
}

// A controller restored from journaled state resumes its preference and
// decision numbering, and does not re-trigger for the shape it is tuned for.
func TestRestoreResumesPreference(t *testing.T) {
	var decisions []Decision
	c := testController(t, func(ctx context.Context, tr *trigger) (searchResult, error) {
		if tr.incumbent != "cyclic_cols(2)" {
			t.Errorf("search incumbent = %q, want the restored preference", tr.incumbent)
		}
		return searchResult{Winner: "all", WinnerMakespan: 10, IncumbentMakespan: 100, MeasuredGain: 0.9}, nil
	}, []State{{Scenario: "s1", Preferred: "cyclic_cols(2)", TunedFor: "N=24", Decisions: 3}}, 7,
		Hooks{Persist: func(d Decision) { decisions = append(decisions, d) }})

	if got := c.Preferred("s1"); got != "cyclic_cols(2)" {
		t.Fatalf("restored Preferred = %q", got)
	}
	feed(c, "s1", "N=24", 50) // the tuned-for shape: no trigger
	if st := c.Stats(); st.Triggers != 0 {
		t.Fatalf("restored controller re-triggered for its tuned shape")
	}
	feed(c, "s1", "N=32", 30) // a new shift searches against the restored incumbent
	waitIdle(t, c)
	c.Close()
	if len(decisions) != 1 {
		t.Fatalf("decisions = %+v, want 1", decisions)
	}
	if d := decisions[0]; d.Seq != 8 || d.Incumbent != "cyclic_cols(2)" || d.Outcome != "switched" {
		t.Errorf("decision = %+v, want seq 8 against the restored incumbent", d)
	}
	snap := c.Snapshot()
	if len(snap.Scenarios) != 1 || snap.Scenarios[0].Decisions != 4 {
		t.Errorf("snapshot = %+v, want 4 cumulative decisions", snap.Scenarios)
	}
}

// Decisions across scenarios settle in trigger order with monotonic
// sequence numbers, and Snapshot reflects the final state.
func TestMultiScenarioSequencing(t *testing.T) {
	var decisions []Decision
	c := testController(t, func(ctx context.Context, tr *trigger) (searchResult, error) {
		return searchResult{Winner: fmt.Sprintf("win-%s", tr.scenario), WinnerMakespan: 10,
			IncumbentMakespan: 100, MeasuredGain: 0.9}, nil
	}, nil, 0, Hooks{Persist: func(d Decision) { decisions = append(decisions, d) }})
	for i := 0; i < 6; i++ {
		c.Observe(obs("a", "x"))
		c.Observe(obs("b", "x"))
	}
	for i := 0; i < 30; i++ {
		c.Observe(obs("a", "y"))
		c.Observe(obs("b", "y"))
	}
	waitIdle(t, c)
	c.Close()
	if len(decisions) != 2 {
		t.Fatalf("%d decisions, want one per scenario", len(decisions))
	}
	var seqs []uint64
	for _, d := range decisions {
		seqs = append(seqs, d.Seq)
	}
	if !reflect.DeepEqual(seqs, []uint64{1, 2}) {
		t.Errorf("decision seqs = %v, want [1 2]", seqs)
	}
	if c.Preferred("a") != "win-a" || c.Preferred("b") != "win-b" {
		t.Errorf("preferences = %q/%q", c.Preferred("a"), c.Preferred("b"))
	}
}
