package adapt

import (
	"context"
	"fmt"
	"strings"

	"procdecomp/internal/autotune"
	"procdecomp/internal/machine"
)

// runSearch is the production search bridge: one triggered shift becomes one
// bounded autotune search over the scenario's mapping space, pinned to the
// pipeline the service compiles the shape with, warm-started from the
// incumbent. The incumbent's makespan is measured inside the same search —
// as the anchored baseline when the scenario still runs its declared
// decomposition, as the forced reference candidate once a preference is in
// force — so the reported gain compares like with like.
func (c *Controller) runSearch(ctx context.Context, t *trigger) (searchResult, error) {
	spec := t.spec
	if spec.Source == "" || spec.Entry == "" || spec.Dist == "" || spec.Procs < 1 {
		return searchResult{}, fmt.Errorf("adapt: trigger for %s carries no searchable spec", t.scenario)
	}
	w := &autotune.Workload{
		Name: t.scenario, Source: spec.Source, Entry: spec.Entry,
		Dist: spec.Dist, Defines: spec.Defines,
	}
	space := autotune.Space{Modes: []string{spec.Mode}}
	if spec.Blk > 0 {
		space.Blks = []int64{spec.Blk}
	}
	opts := autotune.Options{
		Space: space, Keep: c.cfg.SearchKeep, TopK: c.cfg.SearchTopK,
		Workers: c.cfg.SearchWorkers,
		// Anchor the model with the program as declared, compiled the way the
		// service compiles it.
		BaselineMode: spec.Mode, BaselineBlk: spec.Blk,
	}
	var handKey string
	if t.incumbent != "" {
		m, err := autotune.ParseMapping(t.incumbent)
		if err != nil {
			return searchResult{}, fmt.Errorf("adapt: incumbent %q: %w", t.incumbent, err)
		}
		hand := autotune.Candidate{Mapping: m, Mode: spec.Mode, Blk: spec.Blk}
		handKey = hand.Key()
		opts.Hand = &hand
		opts.Seed = []autotune.Mapping{m}
	}
	rep, err := autotune.SearchCtx(ctx, w, machine.DefaultConfig(spec.Procs), opts)
	if err != nil {
		return searchResult{}, err
	}

	res := searchResult{
		Enumerated: rep.Enumerated,
		Replayed:   rep.Replayed,
		Candidates: len(rep.Results),
	}
	winKey, _, _ := strings.Cut(rep.Winner, "/")
	res.Winner = winKey
	var winPred uint64
	for _, r := range rep.Results {
		if r.Candidate.Key() != rep.Winner {
			continue
		}
		res.WinnerMakespan = r.Measured
		winPred = r.Predicted
		if winPred == 0 {
			winPred = r.Measured
		}
		break
	}
	incMeasured, incPred := rep.Baseline.Measured, rep.Baseline.Predicted
	if handKey != "" {
		found := false
		for _, r := range rep.Results {
			if r.Candidate.Key() == handKey {
				incMeasured, incPred, found = r.Measured, r.Predicted, true
				if incPred == 0 {
					incPred = r.Measured
				}
				break
			}
		}
		if !found || incMeasured == 0 {
			return searchResult{}, fmt.Errorf("adapt: incumbent %s was not measured", handKey)
		}
	}
	res.IncumbentMakespan = incMeasured
	if incMeasured > 0 && res.WinnerMakespan > 0 {
		res.MeasuredGain = (float64(incMeasured) - float64(res.WinnerMakespan)) / float64(incMeasured)
	}
	if incPred > 0 && winPred > 0 {
		res.PredictedGain = (float64(incPred) - float64(winPred)) / float64(incPred)
	}
	return res, nil
}
