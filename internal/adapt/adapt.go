// Package adapt closes the serving loop the paper leaves open: the paper
// picks one decomposition statically, from locality of reference; this
// controller watches the workload a live pdserve actually receives and
// re-decomposes when it shifts. Per scenario (program × entry × machine
// size), it maintains an EWMA profile of the observed request shapes, detects
// a sustained shift with hysteresis (dwell before triggering, cooldown
// after), runs a bounded autotune search in a background worker — warm-
// started from the incumbent mapping, panic-isolated, cancellable on drain —
// and atomically publishes the winning mapping for subsequent requests.
//
// Everything the controller decides is a deterministic function of the
// observation sequence: profiles advance on discrete observation counts, not
// wall clocks; the search itself is the deterministic autotune pipeline; and
// every settled decision is journaled through Hooks.Persist, so two servers
// fed the same requests in the same order write byte-identical decision
// journals, and a crash-restarted server resumes from its journaled state.
package adapt

import (
	"context"
	"fmt"
	"math"
	"sync"
)

// Config tunes the controller. The zero value takes usable defaults.
type Config struct {
	// Enabled gates the whole subsystem; a disabled controller is never
	// constructed by the server.
	Enabled bool
	// Alpha is the EWMA weight a new observation moves the shape-share
	// profile by (default 0.2).
	Alpha float64
	// ShiftAt is the share a non-incumbent shape must sustain to count as a
	// shift (default 0.6).
	ShiftAt float64
	// MinObs is the minimum observations a scenario needs before it may
	// trigger at all (default 16) — a cold scenario is still learning.
	MinObs int
	// Dwell is how many consecutive observations the shift must persist
	// before a search triggers (default 8). Hysteresis: a transient burst
	// resets the count.
	Dwell int
	// Cooldown is how many observations after a trigger the scenario stays
	// quiet (default 64) — no flapping, at most one switch per cooldown
	// window.
	Cooldown int
	// MinGain is the relative measured improvement the search winner must
	// deliver over the incumbent before the mapping actually switches
	// (default 0.05). Below it the decision is journaled as "held".
	MinGain float64
	// SearchKeep/SearchTopK/SearchWorkers bound the background search
	// (defaults 6/2/2): Keep statically ranked candidates replayed, TopK
	// machine confirmations, Workers measurement goroutines.
	SearchKeep    int
	SearchTopK    int
	SearchWorkers int
	// QueueDepth bounds pending triggers across scenarios (default 8). A
	// trigger that finds the queue full is dropped and the scenario re-arms
	// after its cooldown.
	QueueDepth int
}

func (c Config) withDefaults() Config {
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.2
	}
	if c.ShiftAt <= 0 || c.ShiftAt > 1 {
		c.ShiftAt = 0.6
	}
	if c.MinObs <= 0 {
		c.MinObs = 16
	}
	if c.Dwell <= 0 {
		c.Dwell = 8
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 64
	}
	if c.MinGain <= 0 {
		c.MinGain = 0.05
	}
	if c.SearchKeep <= 0 {
		c.SearchKeep = 6
	}
	if c.SearchTopK <= 0 {
		c.SearchTopK = 2
	}
	if c.SearchWorkers <= 0 {
		c.SearchWorkers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 8
	}
	return c
}

// A SearchSpec carries everything the background worker needs to re-run the
// scenario's search for one observed shape: the program, its entry and dist
// declaration, the machine size, and the pipeline the service compiles with.
type SearchSpec struct {
	Source  string
	Entry   string
	Dist    string
	Procs   int
	Mode    string
	Blk     int64
	Defines map[string]int64
}

// An Observation is one completed request fed to the controller: which
// scenario it belongs to, the shape it exercised, the makespan the service
// measured (or served from cache), and the spec a search for that shape
// would need.
type Observation struct {
	Scenario string
	Shape    string
	Makespan uint64
	Spec     SearchSpec
}

// A Decision is one settled adaptation: the trigger, the profile that fired
// it, what the search found, and what the controller did about it. Decisions
// are journaled as they settle and must be byte-stable: floats are rounded
// to 1e-6 before they land here.
type Decision struct {
	Seq      uint64
	Scenario string
	Cause    string // "shift": the only trigger cause so far
	Shape    string // the shape that became dominant
	Obs      int64  // scenario observation count at the trigger
	// Profile is the EWMA shape-share snapshot that fired the trigger.
	Profile map[string]float64
	// Incumbent is the mapping preferred when the search started ("" = the
	// program's declared decomposition).
	Incumbent string
	// Search outcome. Enumerated/Replayed/Candidates quantify the work;
	// the makespans and gains compare winner to incumbent under the same
	// measured pipeline.
	Enumerated        int
	Replayed          int
	Candidates        int
	IncumbentMakespan uint64
	WinnerMakespan    uint64
	PredictedGain     float64
	MeasuredGain      float64
	Winner            string
	// Outcome is "switched", "held" (gain below threshold), "failed",
	// "panicked", or "canceled" (drain interrupted the search).
	Outcome string
	// Mapping is the preference in force after this decision ("" = declared).
	Mapping string `json:",omitempty"`
	Note    string `json:",omitempty"`
}

// State is one scenario's durable essence — what a restarted server needs to
// resume with its learned preference intact.
type State struct {
	Scenario  string
	Preferred string
	TunedFor  string
	Decisions int64
}

// Stats is a point-in-time counter snapshot; after a drain, Triggers equals
// the sum of the per-outcome search counters (every trigger settles).
type Stats struct {
	Observations int64
	Triggers     int64
	Switched     int64
	Held         int64
	Failed       int64
	Panicked     int64
	Canceled     int64
}

// Hooks connect the controller to its host.
type Hooks struct {
	// Persist, when set, durably records each settled decision (the serve
	// decision journal). Called from the controller's worker goroutine, in
	// decision order.
	Persist func(Decision)
	// Metric, when set, mirrors controller counters into the host's metric
	// families: kinds "observation", "trigger" (label: cause), "search"
	// (label: outcome), "switch".
	Metric func(kind, label string)
}

// scenario is one (program, entry, procs)'s adaptive state.
type scenario struct {
	key string
	obs int64
	// shares is the EWMA shape profile; shapeOrder fixes iteration order to
	// first-observed so every derived value is deterministic.
	shares     map[string]float64
	shapeOrder []string
	specs      map[string]SearchSpec
	// tunedFor is the shape the current preference was chosen for. The
	// first observed shape anchors it, so a scenario whose traffic never
	// shifts never triggers.
	tunedFor  string
	preferred string // "" = the program's declared decomposition
	dwell     int
	cooldown  int
	searching bool
	decisions int64
}

// trigger is one queued search request for the background worker.
type trigger struct {
	scenario  string
	shape     string
	spec      SearchSpec
	incumbent string
	obs       int64
	profile   map[string]float64
}

// searchResult is what the search bridge reports back to the controller.
type searchResult struct {
	Enumerated        int
	Replayed          int
	Candidates        int
	Winner            string
	WinnerMakespan    uint64
	IncumbentMakespan uint64
	PredictedGain     float64
	MeasuredGain      float64
}

// Controller is the adaptation loop. One background worker drains triggers;
// Observe and Preferred are safe for concurrent use and never block on a
// running search.
type Controller struct {
	cfg   Config
	hooks Hooks
	// searchFn runs one triggered search — the autotune bridge in
	// production, a stub in controller tests.
	searchFn func(ctx context.Context, t *trigger) (searchResult, error)

	ctx      context.Context
	cancel   context.CancelFunc
	wg       sync.WaitGroup
	triggers chan *trigger

	mu        sync.Mutex
	closed    bool
	scenarios map[string]*scenario
	order     []string
	seq       uint64
	stats     Stats
}

// New builds and starts a controller, resuming any journaled per-scenario
// state. startSeq is the highest decision sequence already journaled, so a
// restarted server keeps numbering where it left off.
func New(cfg Config, restored []State, startSeq uint64, hooks Hooks) *Controller {
	c := &Controller{
		cfg:       cfg.withDefaults(),
		hooks:     hooks,
		scenarios: map[string]*scenario{},
		seq:       startSeq,
	}
	c.searchFn = c.runSearch
	for _, st := range restored {
		sc := c.ensureLocked(st.Scenario)
		sc.preferred = st.Preferred
		sc.tunedFor = st.TunedFor
		sc.decisions = st.Decisions
	}
	c.ctx, c.cancel = context.WithCancel(context.Background())
	c.triggers = make(chan *trigger, c.cfg.QueueDepth)
	c.wg.Add(1)
	go c.worker()
	return c
}

// ensureLocked returns the scenario, creating it in first-seen order. The
// caller holds c.mu (or, during New, has exclusive access).
func (c *Controller) ensureLocked(key string) *scenario {
	sc := c.scenarios[key]
	if sc == nil {
		sc = &scenario{key: key, shares: map[string]float64{}, specs: map[string]SearchSpec{}}
		c.scenarios[key] = sc
		c.order = append(c.order, key)
	}
	return sc
}

// Observe feeds one completed request into the profile and, when a shift has
// dwelt long enough, enqueues a search trigger. All state advances on
// observation counts — no wall clock — so the decision sequence is a pure
// function of the observation sequence.
func (c *Controller) Observe(o Observation) {
	if o.Scenario == "" || o.Shape == "" {
		return
	}
	var fired bool
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.stats.Observations++
	sc := c.ensureLocked(o.Scenario)
	sc.obs++
	for _, k := range sc.shapeOrder {
		sc.shares[k] *= 1 - c.cfg.Alpha
	}
	if _, seen := sc.shares[o.Shape]; !seen {
		sc.shapeOrder = append(sc.shapeOrder, o.Shape)
	}
	sc.shares[o.Shape] += c.cfg.Alpha
	sc.specs[o.Shape] = o.Spec
	if sc.tunedFor == "" {
		sc.tunedFor = o.Shape
	}
	switch {
	case sc.cooldown > 0:
		sc.cooldown--
	case sc.searching || sc.obs < int64(c.cfg.MinObs):
		// still converging, or a search for this scenario is in flight
	default:
		dom, share := dominantLocked(sc)
		if dom != sc.tunedFor && share >= c.cfg.ShiftAt {
			sc.dwell++
			if sc.dwell >= c.cfg.Dwell {
				sc.dwell = 0
				sc.searching = true
				sc.cooldown = c.cfg.Cooldown
				c.stats.Triggers++
				fired = true
				tr := &trigger{scenario: sc.key, shape: dom, spec: sc.specs[dom],
					incumbent: sc.preferred, obs: sc.obs, profile: roundedShares(sc)}
				select {
				case c.triggers <- tr:
				default:
					// Queue full: drop the trigger and re-arm. A sustained
					// shift re-triggers after the cooldown.
					sc.searching = false
				}
			}
		} else {
			sc.dwell = 0
		}
	}
	c.mu.Unlock()
	c.metric("observation", "")
	if fired {
		c.metric("trigger", "shift")
	}
}

// dominantLocked picks the highest-share shape, first-observed winning ties.
func dominantLocked(sc *scenario) (string, float64) {
	dom, best := "", -1.0
	for _, k := range sc.shapeOrder {
		if sc.shares[k] > best {
			dom, best = k, sc.shares[k]
		}
	}
	return dom, best
}

// roundedShares snapshots the profile at journal precision.
func roundedShares(sc *scenario) map[string]float64 {
	out := make(map[string]float64, len(sc.shares))
	for k, v := range sc.shares {
		out[k] = round6(v)
	}
	return out
}

func round6(v float64) float64 { return math.Round(v*1e6) / 1e6 }

func (c *Controller) metric(kind, label string) {
	if c.hooks.Metric != nil {
		c.hooks.Metric(kind, label)
	}
}

// worker drains triggers one at a time: searches never run concurrently, so
// a burst of shifts across scenarios serializes deterministically.
func (c *Controller) worker() {
	defer c.wg.Done()
	for t := range c.triggers {
		d := c.runTrigger(t)
		c.settle(t, d)
	}
}

// runTrigger executes one search under panic isolation and classifies the
// outcome. A drain cancels through c.ctx: a search that never started (or
// aborted mid-flight) settles as "canceled" and leaves the incumbent alone.
func (c *Controller) runTrigger(t *trigger) (d Decision) {
	d = Decision{Scenario: t.scenario, Cause: "shift", Shape: t.shape, Obs: t.obs,
		Profile: t.profile, Incumbent: t.incumbent, Mapping: t.incumbent}
	defer func() {
		if r := recover(); r != nil {
			d.Outcome = "panicked"
			d.Note = fmt.Sprintf("search panicked: %v", r)
			d.Mapping = t.incumbent
		}
	}()
	if err := c.ctx.Err(); err != nil {
		d.Outcome = "canceled"
		d.Note = "drain before the search started"
		return d
	}
	res, err := c.searchFn(c.ctx, t)
	switch {
	case err != nil && c.ctx.Err() != nil:
		d.Outcome = "canceled"
		d.Note = "drain interrupted the search"
	case err != nil:
		d.Outcome = "failed"
		d.Note = err.Error()
	default:
		d.Enumerated = res.Enumerated
		d.Replayed = res.Replayed
		d.Candidates = res.Candidates
		d.IncumbentMakespan = res.IncumbentMakespan
		d.WinnerMakespan = res.WinnerMakespan
		d.PredictedGain = round6(res.PredictedGain)
		d.MeasuredGain = round6(res.MeasuredGain)
		d.Winner = res.Winner
		if res.Winner != t.incumbent && res.MeasuredGain >= c.cfg.MinGain {
			d.Outcome = "switched"
			d.Mapping = res.Winner
		} else {
			d.Outcome = "held"
		}
	}
	return d
}

// settle publishes a decision: the scenario's preference and tuning anchor
// move, counters advance, and the decision is journaled. On "switched" and
// "held" alike, tunedFor moves to the triggering shape — the scenario has
// been tuned *for* that traffic now (even if tuning changed nothing), so the
// same shift cannot re-trigger and flap.
func (c *Controller) settle(t *trigger, d Decision) {
	c.mu.Lock()
	sc := c.scenarios[t.scenario]
	sc.searching = false
	switch d.Outcome {
	case "switched":
		sc.preferred = d.Mapping
		sc.tunedFor = t.shape
		c.stats.Switched++
	case "held":
		sc.tunedFor = t.shape
		c.stats.Held++
	case "failed":
		c.stats.Failed++
	case "panicked":
		c.stats.Panicked++
	case "canceled":
		c.stats.Canceled++
	}
	sc.decisions++
	c.seq++
	d.Seq = c.seq
	c.mu.Unlock()
	c.metric("search", d.Outcome)
	if d.Outcome == "switched" {
		c.metric("switch", "")
	}
	if c.hooks.Persist != nil {
		c.hooks.Persist(d)
	}
}

// Preferred returns the mapping currently preferred for the scenario, or ""
// for the program's declared decomposition.
func (c *Controller) Preferred(scenario string) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if sc := c.scenarios[scenario]; sc != nil {
		return sc.preferred
	}
	return ""
}

// Stats snapshots the controller's counters.
func (c *Controller) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// ScenarioStatus is one scenario's introspection view (GET /adapt).
type ScenarioStatus struct {
	Scenario     string
	Observations int64
	TunedFor     string
	Preferred    string `json:",omitempty"`
	Shares       map[string]float64
	Dwell        int
	Cooldown     int
	Searching    bool
	Decisions    int64
}

// Status is the controller's full introspection view.
type Status struct {
	Scenarios []ScenarioStatus
	Stats     Stats
	// Busy reports a search in flight or queued: a harness that needs the
	// controller settled polls until Busy is false.
	Busy bool
}

// Snapshot captures the controller state for the /adapt endpoint.
func (c *Controller) Snapshot() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Status{Stats: c.stats}
	for _, key := range c.order {
		sc := c.scenarios[key]
		st.Scenarios = append(st.Scenarios, ScenarioStatus{
			Scenario: sc.key, Observations: sc.obs, TunedFor: sc.tunedFor,
			Preferred: sc.preferred, Shares: roundedShares(sc),
			Dwell: sc.dwell, Cooldown: sc.cooldown, Searching: sc.searching,
			Decisions: sc.decisions,
		})
		if sc.searching {
			st.Busy = true
		}
	}
	return st
}

// Close stops the controller: new observations become no-ops, an in-flight
// search is canceled, and queued triggers settle as "canceled" decisions —
// journaled like any other, so a drain never loses a trigger silently.
func (c *Controller) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	// Observe enqueues under c.mu and checks closed first, so after this
	// unlock nothing new can reach the channel.
	close(c.triggers)
	c.mu.Unlock()
	c.cancel()
	c.wg.Wait()
}
