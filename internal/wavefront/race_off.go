//go:build !race

package wavefront

// raceEnabled reports whether the race detector instruments this build; the
// scale test shrinks its problem size under the detector's ~10× slowdown.
const raceEnabled = false
