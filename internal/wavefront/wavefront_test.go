package wavefront

import (
	"math"
	"testing"

	"procdecomp/internal/exec"
	"procdecomp/internal/istruct"
	"procdecomp/internal/lang"
	"procdecomp/internal/machine"
	"procdecomp/internal/sem"
)

const gsSource = `
const N = 16;
const c = 0.25;

dist Column = cyclic_cols(NPROCS);

proc init_boundary(New: matrix[N, N] on Column) {
  for j = 1 to N {
    New[1, j] = 1.0;
    New[N, j] = 1.0;
  }
  for i = 2 to N - 1 {
    New[i, 1] = 1.0;
    New[i, N] = 1.0;
  }
}

proc gs_iteration(Old: matrix[N, N] on Column): matrix[N, N] on Column {
  let New = matrix(N, N) on Column;
  call init_boundary(New);
  for j = 2 to N - 1 {
    for i = 2 to N - 1 {
      New[i, j] = c * (New[i - 1, j] + New[i, j - 1] + Old[i + 1, j] + Old[i, j + 1]);
    }
  }
  return New;
}
`

func input(t *testing.T, n int64) *istruct.Matrix {
	t.Helper()
	m, err := istruct.NewMatrix("Old", n, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= n; i++ {
		for j := int64(1); j <= n; j++ {
			m.Write(i, j, float64((i*5+j*3)%17)+0.125)
		}
	}
	return m
}

func sequentialGS(t *testing.T, procs, n int64) *istruct.Matrix {
	t.Helper()
	prog, err := lang.Parse(gsSource)
	if err != nil {
		t.Fatal(err)
	}
	info, errs := sem.Check(prog, sem.Config{Procs: procs, Defines: map[string]int64{"N": n}})
	if len(errs) > 0 {
		t.Fatal(errs)
	}
	out, err := exec.RunSequential(info, "gs_iteration", []exec.ArgVal{{Matrix: input(t, n)}})
	if err != nil {
		t.Fatal(err)
	}
	return out.Ret.Matrix
}

func TestHandwrittenMatchesSequential(t *testing.T) {
	for _, procs := range []int{1, 2, 3, 4, 8} {
		for _, blk := range []int64{1, 3, 8, 14, 50} {
			const n = 16
			want := sequentialGS(t, int64(procs), n)
			res, err := Run(machine.DefaultConfig(procs), n, blk, input(t, n))
			if err != nil {
				t.Fatalf("procs=%d blk=%d: %v", procs, blk, err)
			}
			for i := int64(1); i <= n; i++ {
				for j := int64(1); j <= n; j++ {
					dw, dg := want.Defined(i, j), res.New.Defined(i, j)
					if dw != dg {
						t.Fatalf("procs=%d blk=%d: definedness mismatch at (%d,%d)", procs, blk, i, j)
					}
					if !dw {
						continue
					}
					vw, _ := want.Read(i, j)
					vg, _ := res.New.Read(i, j)
					if math.Abs(vw-vg) > 1e-9 {
						t.Fatalf("procs=%d blk=%d: (%d,%d) = %g, want %g", procs, blk, i, j, vg, vw)
					}
				}
			}
		}
	}
}

func TestHandwrittenMessageCount(t *testing.T) {
	// Footnote 3: "2142 messages for the handwritten code" at N=128,
	// blksize=8: 126 old-column messages + 126 columns × 16 new-value blocks.
	res, err := Run(machine.DefaultConfig(8), 128, 8, input(t, 128))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Messages != 2142 {
		t.Errorf("messages = %d, want 2142 (paper footnote 3)", res.Stats.Messages)
	}
}

func TestHandwrittenMessageFormula(t *testing.T) {
	for _, procs := range []int{2, 4} {
		for _, blk := range []int64{2, 4, 8} {
			const n = 32
			res, err := Run(machine.DefaultConfig(procs), n, blk, input(t, n))
			if err != nil {
				t.Fatal(err)
			}
			blocks := (n - 2 + blk - 1) / blk
			want := (n - 2) + (n-2)*blocks
			if res.Stats.Messages != want {
				t.Errorf("procs=%d blk=%d: messages = %d, want %d", procs, blk, res.Stats.Messages, want)
			}
		}
	}
}

func TestHandwrittenScales(t *testing.T) {
	const n = 64
	mk := func(procs int) machine.Cost {
		res, err := Run(machine.DefaultConfig(procs), n, 8, input(t, n))
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.Makespan
	}
	// Message start-up costs dominate small machines (the paper's central
	// premise), so a few processors can lose to one; but the pipeline must
	// scale beyond that and eventually beat the sequential run.
	m1, m4, m16 := mk(1), mk(4), mk(16)
	if m4 <= m16 {
		t.Errorf("no scaling from 4 to 16 procs: %d vs %d", m4, m16)
	}
	if m16 >= m1 {
		t.Errorf("16 processors (%d) should beat 1 (%d)", m16, m1)
	}
}

func TestBadArguments(t *testing.T) {
	if _, err := Run(machine.DefaultConfig(2), 16, 0, input(t, 16)); err == nil {
		t.Error("zero block size should fail")
	}
	if _, err := Run(machine.DefaultConfig(2), 32, 4, input(t, 16)); err == nil {
		t.Error("shape mismatch should fail")
	}
}
