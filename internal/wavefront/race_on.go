//go:build race

package wavefront

const raceEnabled = true
