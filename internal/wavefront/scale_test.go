package wavefront

import (
	"testing"

	"procdecomp/internal/machine"
)

// The scale the goroutine machine could not reach: a 1024-processor
// Gauss-Seidel wavefront over a 4096×4096 grid — over four thousand
// simulated processes' worth of sends, receives and blocked waits — must
// complete inside an ordinary `go test` run on the event-loop engine, and
// compute the exact sequential answer. Under the race detector (or -short)
// the grid shrinks; the full size runs in plain CI.
func TestScale1024x4096(t *testing.T) {
	s, n, blk := 1024, int64(4096), int64(32)
	if raceEnabled || testing.Short() {
		s, n, blk = 64, 512, 16
	}

	old := input(t, n)
	res, err := Run(machine.DefaultConfig(s), n, blk, old)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Makespan == 0 || len(res.Stats.ProcTimes) != s {
		t.Fatalf("degenerate stats: %+v", res.Stats)
	}

	// Reference recurrence in plain Go: boundaries 1.0, interior in normal
	// order — cheap even at 4096².
	want := make([][]float64, n+2)
	for i := range want {
		want[i] = make([]float64, n+2)
	}
	rd := func(i, j int64) float64 {
		v, err := old.Read(i, j)
		if err != nil {
			t.Fatalf("input read (%d,%d): %v", i, j, err)
		}
		return v
	}
	for j := int64(1); j <= n; j++ {
		want[1][j], want[n][j] = 1.0, 1.0
	}
	for i := int64(2); i <= n-1; i++ {
		want[i][1], want[i][n] = 1.0, 1.0
	}
	for j := int64(2); j <= n-1; j++ {
		for i := int64(2); i <= n-1; i++ {
			want[i][j] = 0.25 * (want[i-1][j] + want[i][j-1] + rd(i+1, j) + rd(i, j+1))
		}
	}
	for i := int64(1); i <= n; i++ {
		for j := int64(1); j <= n; j++ {
			got, err := res.New.Read(i, j)
			if err != nil {
				t.Fatalf("result read (%d,%d): %v", i, j, err)
			}
			if d := got - want[i][j]; d > 1e-9 || d < -1e-9 {
				t.Fatalf("value mismatch at (%d,%d): got %g, want %g", i, j, got, want[i][j])
			}
		}
	}
}
