// Package wavefront implements the paper's hand-written Gauss-Seidel
// comparator (Fig. 3 / Appendix A.4) directly against the simulated
// machine: columns wrapped around a ring, old columns sent left one message
// per column, new values computed and communicated in blocks of blksize,
// pipelining the wavefront. This is the baseline the compiler-generated
// code is measured against in Figs. 6 and 7.
//
// Cost accounting mirrors the SPMD interpreter's (one Mem per I-structure
// access plus a flat two-operation subscript charge, one Op per arithmetic
// operator, one LoopStep per iteration), so the comparison with compiled
// code is apples-to-apples.
package wavefront

import (
	"fmt"

	"procdecomp/internal/dist"
	"procdecomp/internal/istruct"
	"procdecomp/internal/machine"
)

const (
	tagOld int64 = iota + 1
	tagNew
)

// indexCost mirrors exec's flat subscript charge.
const indexCost = 2

// Result carries the gathered output and the run's machine statistics.
type Result struct {
	New   *istruct.Matrix
	Stats machine.Stats
}

// Run executes the hand-written program on a fresh machine. old supplies the
// N×N old matrix (fully defined); blksize is the pipeline block size of
// Fig. 3. The returned matrix is the gathered New.
func Run(cfg machine.Config, n, blksize int64, old *istruct.Matrix) (*Result, error) {
	if blksize <= 0 {
		return nil, fmt.Errorf("wavefront: block size must be positive, got %d", blksize)
	}
	if old.Rows() != n || old.Cols() != n {
		return nil, fmt.Errorf("wavefront: old matrix is %dx%d, want %dx%d", old.Rows(), old.Cols(), n, n)
	}
	s := int64(cfg.Procs)
	d := dist.NewCyclicCols(s, n, n)

	m := machine.New(cfg)
	states := make([]*node, cfg.Procs)
	for p := range states {
		states[p] = newNode(int64(p), n, s, blksize, d, old)
	}
	err := m.Run(func(p *machine.Proc) {
		states[p.ID()].run(p)
	})
	if err != nil {
		return nil, err
	}
	// A traced run self-checks against the Breakdown partition.
	if err := m.VerifyTrace(); err != nil {
		return nil, err
	}

	gathered, err := istruct.NewMatrix("New", n, n)
	if err != nil {
		return nil, err
	}
	for i := int64(1); i <= n; i++ {
		for j := int64(1); j <= n; j++ {
			owner := d.Owner([]int64{i, j})
			l := d.Local([]int64{i, j})
			local := states[owner].new
			if !local.Defined(l[0], l[1]) {
				continue
			}
			v, _ := local.Read(l[0], l[1])
			if err := gathered.Write(i, j, v); err != nil {
				return nil, err
			}
		}
	}
	stats, err := m.Stats()
	if err != nil {
		return nil, err
	}
	return &Result{New: gathered, Stats: stats}, nil
}

// node is one processor's state.
type node struct {
	me      int64
	n, s    int64
	blksize int64
	d       dist.Dist
	old     *istruct.Matrix // local part
	new     *istruct.Matrix // local part
}

func newNode(me, n, s, blksize int64, d dist.Dist, globalOld *istruct.Matrix) *node {
	ls := d.LocalShape()
	localOld, err := istruct.NewMatrix("Old", ls[0], ls[1])
	if err != nil {
		panic(err)
	}
	localNew, err := istruct.NewMatrix("New", ls[0], ls[1])
	if err != nil {
		panic(err)
	}
	// Ownership is per-column under the wrapped-columns decomposition (the
	// same assumption ownedCols makes), so scatter scans only the owned
	// columns: O(n²) work across the whole machine instead of O(s·n²),
	// which is what lets a 1024-processor 4096×4096 run set up in seconds.
	for j := int64(1); j <= n; j++ {
		if d.Owner([]int64{1, j}) != me {
			continue
		}
		lj := d.Local([]int64{1, j})[1]
		for i := int64(1); i <= n; i++ {
			if !globalOld.Defined(i, j) {
				continue
			}
			v, _ := globalOld.Read(i, j)
			if err := localOld.Write(i, lj, v); err != nil {
				panic(err)
			}
		}
	}
	return &node{me: me, n: n, s: s, blksize: blksize, d: d, old: localOld, new: localNew}
}

func (nd *node) localCol(j int64) int64 { return (j-1)/nd.s + 1 }

// ownedCols yields this node's columns in ascending global order.
func (nd *node) ownedCols() []int64 {
	var cols []int64
	for j := int64(1); j <= nd.n; j++ {
		if j%nd.s == nd.me {
			cols = append(cols, j)
		}
	}
	return cols
}

func (nd *node) read(p *machine.Proc, m *istruct.Matrix, i, lj int64) float64 {
	p.Ops(indexCost)
	p.Mem(1)
	v, err := m.Read(i, lj)
	if err != nil {
		panic(err)
	}
	return v
}

func (nd *node) write(p *machine.Proc, m *istruct.Matrix, i, lj int64, v float64) {
	p.Ops(indexCost)
	p.Mem(1)
	if err := m.Write(i, lj, v); err != nil {
		panic(err)
	}
}

// run is the Fig. 3 program. LEFT = (p-1) mod s, RIGHT = (p+1) mod s; for
// every owned column: send the old column left, receive the next old column
// from the right, then compute and communicate the new column in blocks.
func (nd *node) run(p *machine.Proc) {
	n, s, blk := nd.n, nd.s, nd.blksize
	left := int((nd.me - 1 + s) % s)
	right := int((nd.me + 1) % s)
	c := 0.25

	// init-boundary on owned columns.
	for _, j := range nd.ownedCols() {
		p.LoopStep()
		lj := nd.localCol(j)
		nd.write(p, nd.new, 1, lj, 1.0)
		nd.write(p, nd.new, n, lj, 1.0)
		if j == 1 || j == n {
			for i := int64(2); i <= n-1; i++ {
				p.LoopStep()
				nd.write(p, nd.new, i, lj, 1.0)
			}
		}
	}

	oldRecv := make([]float64, n+1) // t[1..N]: the old column received from the right

	for _, j := range nd.ownedCols() {
		p.LoopStep()
		lj := nd.localCol(j)

		if s > 1 {
			// Send column j of Old values to the LEFT (for their column j-1
			// computation), one message per column (Fig. 3's key trick).
			if j >= 3 && j <= n {
				buf := make([]float64, 0, n-2)
				for i := int64(2); i <= n-1; i++ {
					p.LoopStep()
					buf = append(buf, nd.read(p, nd.old, i, lj))
				}
				p.Send(left, tagOld, buf...)
			}
			// Receive column j+1 of Old values from the RIGHT.
			if j >= 2 && j <= n-1 {
				vals := p.Recv(right, tagOld)
				for k, v := range vals {
					oldRecv[int64(k)+2] = v
				}
			}
		} else if j >= 2 && j <= n-1 {
			// Single processor: the "received" column is local.
			ljr := nd.localCol(j + 1)
			for i := int64(2); i <= n-1; i++ {
				p.LoopStep()
				oldRecv[i] = nd.read(p, nd.old, i, ljr)
			}
		}

		// The new values for column j are computed and communicated in
		// blocks of size blksize.
		if j >= 2 && j <= n-1 {
			interior := n - 2
			nblocks := (interior + blk - 1) / blk
			snew := make([]float64, 0, blk)
			for k := int64(0); k < nblocks; k++ {
				p.LoopStep()
				lo := k*blk + 2
				hi := lo + blk - 1
				if hi > n-1 {
					hi = n - 1
				}
				// Receive a block of new values for column j-1.
				var rnew []float64
				if s > 1 {
					rnew = p.Recv(left, tagNew)
				} else {
					ljl := nd.localCol(j - 1)
					rnew = rnew[:0]
					for i := lo; i <= hi; i++ {
						p.LoopStep()
						rnew = append(rnew, nd.read(p, nd.new, i, ljl))
					}
				}
				// Compute a block of new values for column j.
				snew = snew[:0]
				for i := lo; i <= hi; i++ {
					p.LoopStep()
					t1 := nd.read(p, nd.new, i-1, lj)
					t2 := rnew[i-lo]
					t3 := nd.read(p, nd.old, i+1, lj)
					t4 := oldRecv[i]
					p.Ops(4) // three additions and one multiplication
					v := c * (t1 + t2 + t3 + t4)
					nd.write(p, nd.new, i, lj, v)
					snew = append(snew, v)
				}
				// Send these values to the RIGHT.
				if s > 1 && j <= n-2 {
					p.Send(right, tagNew, snew...)
				}
			}
		}

		// The boundary column 1 is produced by init-boundary but its values
		// still feed column 2's computation: its owner ships them in blocks.
		if s > 1 && j == 1 {
			interior := n - 2
			nblocks := (interior + blk - 1) / blk
			for k := int64(0); k < nblocks; k++ {
				p.LoopStep()
				lo := k*blk + 2
				hi := lo + blk - 1
				if hi > n-1 {
					hi = n - 1
				}
				buf := make([]float64, 0, blk)
				for i := lo; i <= hi; i++ {
					p.LoopStep()
					buf = append(buf, nd.read(p, nd.new, i, nd.localCol(1)))
				}
				p.Send(right, tagNew, buf...)
			}
		}
	}
}
