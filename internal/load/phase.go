package load

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"procdecomp/internal/adapt"
	"procdecomp/internal/serve"
)

// The phase-shift harness is the adaptation loop's end-to-end proof under
// real HTTP traffic: a workload that runs one problem size for a phase and
// then shifts to another, driven at concurrency 1 so the observation
// sequence — and therefore every controller decision — is deterministic.
// Four in-process servers tell the whole story:
//
//   - adaptive + shifted, twice with the same seed: the controller must
//     trigger exactly one re-decomposition, switch to a measurably better
//     mapping, and journal byte-identical decisions across the two runs;
//   - no-adapt + shifted: the control whose steady-state makespan the
//     adaptive run must beat by the configured margin;
//   - adaptive + unshifted: the null control — steady traffic must never
//     trigger.

// PhaseConfig shapes one phase-shift experiment. The zero value takes the
// defaults below.
type PhaseConfig struct {
	// Seed feeds the server's deterministic jitter; the request schedule
	// itself is fixed (concurrency 1, fixed op counts).
	Seed uint64
	// PhaseOps is the request count per phase (default 30) — enough for the
	// EWMA profile to cross the shift threshold and dwell out.
	PhaseOps int
	// SteadyOps is the measured steady-state request count after the
	// controller settles (default 8).
	SteadyOps int
	// Procs/BaseN/ShiftN shape the workload: Gauss-Seidel at Procs, problem
	// size BaseN in phase one and ShiftN in phase two (defaults 4, 16, 24).
	Procs  int
	BaseN  int64
	ShiftN int64
	// GainFrac is the steady-state margin the adaptive run must beat the
	// no-adapt control by (default 0.05): adaptive <= (1-GainFrac)*control.
	GainFrac float64
}

func (c PhaseConfig) withDefaults() PhaseConfig {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.PhaseOps <= 0 {
		c.PhaseOps = 30
	}
	if c.SteadyOps <= 0 {
		c.SteadyOps = 8
	}
	if c.Procs <= 0 {
		c.Procs = 4
	}
	if c.BaseN <= 0 {
		c.BaseN = 16
	}
	if c.ShiftN <= 0 {
		c.ShiftN = 24
	}
	if c.GainFrac <= 0 {
		c.GainFrac = 0.05
	}
	return c
}

// phaseAdaptConfig is the controller tuning every adaptive run uses: the
// profile needs ten observations and six dwells to trigger, and the long
// cooldown bounds each run to at most one switch per phase.
func phaseAdaptConfig(enabled bool) adapt.Config {
	return adapt.Config{
		Enabled: enabled, Alpha: 0.2, ShiftAt: 0.6, MinObs: 10, Dwell: 6,
		Cooldown: 1000, MinGain: 0.02, SearchKeep: 8, SearchTopK: 2,
	}
}

// PhaseRun is one server's side of the experiment.
type PhaseRun struct {
	Label    string
	Requests int
	// Controller outcome after drain.
	Triggers int64
	Switches int64
	// Mapping is the X-Adapt-Mapping of the last steady-state response
	// ("" = the program as declared).
	Mapping string
	// SteadyMakespan is the last steady-state response's simulated makespan.
	SteadyMakespan uint64
	// Decisions is the raw NDJSON of GET /adapt/journal after drain — the
	// byte stream the determinism gate compares across seeded runs.
	Decisions string `json:",omitempty"`
	// AdaptCounters are the pdserve_adapt_* samples scraped after drain.
	AdaptCounters map[string]float64 `json:",omitempty"`
	// MetricsCheck is the post-drain reconciliation outcome ("" = held).
	MetricsCheck string `json:",omitempty"`
}

// PhaseReport is the whole experiment.
type PhaseReport struct {
	Seed     uint64
	Procs    int
	BaseN    int64
	ShiftN   int64
	GainFrac float64

	Adaptive  PhaseRun // adapt on, workload shifts
	Repeat    PhaseRun // same seed again: must reproduce Adaptive's bytes
	Control   PhaseRun // adapt off, workload shifts
	Unshifted PhaseRun // adapt on, workload never shifts
}

// RunPhase executes the four-server experiment and returns the report.
func RunPhase(cfg PhaseConfig) (*PhaseReport, error) {
	cfg = cfg.withDefaults()
	rep := &PhaseReport{Seed: cfg.Seed, Procs: cfg.Procs,
		BaseN: cfg.BaseN, ShiftN: cfg.ShiftN, GainFrac: cfg.GainFrac}
	var err error
	if rep.Adaptive, err = phaseRun("adaptive", cfg, true, true); err != nil {
		return nil, err
	}
	if rep.Repeat, err = phaseRun("repeat", cfg, true, true); err != nil {
		return nil, err
	}
	if rep.Control, err = phaseRun("control", cfg, false, true); err != nil {
		return nil, err
	}
	if rep.Unshifted, err = phaseRun("unshifted", cfg, true, false); err != nil {
		return nil, err
	}
	return rep, nil
}

// phaseRun drives one server through the phase schedule at concurrency 1.
func phaseRun(label string, cfg PhaseConfig, adaptOn, shifted bool) (PhaseRun, error) {
	run := PhaseRun{Label: label}
	dir, err := os.MkdirTemp("", "pdphase-*")
	if err != nil {
		return run, err
	}
	defer os.RemoveAll(dir)
	s, err := serve.New(serve.Config{
		Workers: 1, QueueDepth: 16, CacheDir: dir, AdmitSeed: cfg.Seed,
		Adapt: phaseAdaptConfig(adaptOn),
	})
	if err != nil {
		return run, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		s.Close()
		return run, err
	}
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(ln)
	base := "http://" + ln.Addr().String()
	client := &http.Client{}
	defer func() {
		shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		hs.Shutdown(shutCtx)
		s.Close()
	}()
	if err := awaitReady(client, base); err != nil {
		return run, err
	}

	post := func(n int64) (string, uint64, error) {
		body, _ := json.Marshal(serve.Request{
			GS: true, Procs: cfg.Procs, Mode: "ctr", Defines: map[string]int64{"N": n}})
		resp, err := client.Post(base+"/run", "application/json", strings.NewReader(string(body)))
		if err != nil {
			return "", 0, err
		}
		payload, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return "", 0, err
		}
		if resp.StatusCode != http.StatusOK {
			return "", 0, fmt.Errorf("load: phase %s: /run N=%d: status %d: %.200s", label, n, resp.StatusCode, payload)
		}
		var rr struct{ Makespan uint64 }
		if err := json.Unmarshal(payload, &rr); err != nil {
			return "", 0, err
		}
		run.Requests++
		return resp.Header.Get("X-Adapt-Mapping"), rr.Makespan, nil
	}

	// Phase one: BaseN traffic. Phase two (shifted runs): ShiftN traffic.
	for i := 0; i < cfg.PhaseOps; i++ {
		if _, _, err := post(cfg.BaseN); err != nil {
			return run, err
		}
	}
	steadyN := cfg.BaseN
	if shifted {
		steadyN = cfg.ShiftN
		for i := 0; i < cfg.PhaseOps; i++ {
			if _, _, err := post(cfg.ShiftN); err != nil {
				return run, err
			}
		}
	}
	// Let any in-flight or queued search settle before measuring steady
	// state, so the steady requests run under the post-decision preference.
	if adaptOn {
		if err := awaitAdaptIdle(client, base); err != nil {
			return run, err
		}
	}
	for i := 0; i < cfg.SteadyOps; i++ {
		mapping, makespan, err := post(steadyN)
		if err != nil {
			return run, err
		}
		run.Mapping, run.SteadyMakespan = mapping, makespan
	}

	// Drain, then read the settled ledgers: the decision journal bytes, the
	// post-drain scrape, and the controller's counters.
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(shutCtx); err != nil {
		return run, err
	}
	if adaptOn {
		resp, err := client.Get(base + "/adapt/journal")
		if err != nil {
			return run, err
		}
		lines, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return run, err
		}
		run.Decisions = string(lines)
	}
	metrics, check := scrapeCounters(client, base, s)
	run.MetricsCheck = check
	run.AdaptCounters = map[string]float64{}
	for k, v := range metrics {
		if strings.HasPrefix(k, "pdserve_adapt_") {
			run.AdaptCounters[k] = v
		}
	}
	st := s.Stats()
	run.Triggers, run.Switches = st.Adapt.Triggers, st.Adapt.Switched
	return run, nil
}

// awaitAdaptIdle polls GET /adapt until no search is queued or running.
func awaitAdaptIdle(client *http.Client, base string) error {
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := client.Get(base + "/adapt")
		if err != nil {
			return err
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return err
		}
		var ar struct {
			Status struct{ Busy bool }
		}
		if err := json.Unmarshal(body, &ar); err != nil {
			return err
		}
		if !ar.Status.Busy {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("load: adaptation never settled")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// WriteJSON writes the report.
func (r *PhaseReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Gate returns an error when any phase-shift promise fails: the shifted
// adaptive runs must trigger and switch exactly once and reproduce each
// other byte-for-byte, the unshifted run must never trigger, the adaptive
// steady state must beat the no-adapt control by the margin, and every
// run's metrics must reconcile.
func (r *PhaseReport) Gate() error {
	var problems []string
	for _, run := range []*PhaseRun{&r.Adaptive, &r.Repeat} {
		if run.Triggers != 1 || run.Switches != 1 {
			problems = append(problems, fmt.Sprintf(
				"%s: %d triggers, %d switches, want exactly 1 of each", run.Label, run.Triggers, run.Switches))
		}
		if run.Mapping == "" {
			problems = append(problems, run.Label+": steady state runs with no adaptive mapping")
		}
	}
	if r.Adaptive.Decisions != r.Repeat.Decisions {
		problems = append(problems, "decision journals differ between equal seeded runs")
	}
	if len(CompareCounters(r.Adaptive.AdaptCounters, r.Repeat.AdaptCounters)) > 0 {
		problems = append(problems, fmt.Sprintf("adapt counters differ between equal seeded runs: %v",
			CompareCounters(r.Adaptive.AdaptCounters, r.Repeat.AdaptCounters)))
	}
	if r.Unshifted.Triggers != 0 {
		problems = append(problems, fmt.Sprintf("unshifted control triggered %d searches", r.Unshifted.Triggers))
	}
	if r.Control.SteadyMakespan == 0 || r.Adaptive.SteadyMakespan == 0 {
		problems = append(problems, "a steady-state makespan is missing")
	} else if limit := float64(r.Control.SteadyMakespan) * (1 - r.GainFrac); float64(r.Adaptive.SteadyMakespan) > limit {
		problems = append(problems, fmt.Sprintf(
			"adaptive steady makespan %d does not beat the no-adapt control %d by %.0f%%",
			r.Adaptive.SteadyMakespan, r.Control.SteadyMakespan, r.GainFrac*100))
	}
	for _, run := range []*PhaseRun{&r.Adaptive, &r.Repeat, &r.Control, &r.Unshifted} {
		if run.MetricsCheck != "" {
			problems = append(problems, run.Label+": metrics reconciliation: "+run.MetricsCheck)
		}
	}
	if len(problems) > 0 {
		return fmt.Errorf("load: phase gate failed: %s", strings.Join(problems, "; "))
	}
	return nil
}

// CompareCounters returns the keys whose values differ between two scraped
// counter maps (a key present in only one side differs too).
func CompareCounters(a, b map[string]float64) []string {
	union := map[string]bool{}
	for k := range a {
		union[k] = true
	}
	for k := range b {
		union[k] = true
	}
	var bad []string
	for k := range union {
		av, aok := a[k]
		bv, bok := b[k]
		if !aok || !bok || av != bv {
			bad = append(bad, k)
		}
	}
	return bad
}
