package load

import (
	"testing"
	"time"

	"procdecomp/internal/serve"
)

// A scaled-down load run must pass every gate: no hung operations, every
// acknowledged job terminal, no byte-identity conflicts — with panics
// injected and the queue small enough that shedding and degradation engage.
func TestLoadRunGates(t *testing.T) {
	if testing.Short() {
		t.Skip("load run in -short mode")
	}
	cfg := Config{
		Requests:      300,
		Concurrency:   100,
		Seed:          7,
		ClientTimeout: 60 * time.Second,
		Server: serve.Config{
			// A deliberately small queue over few workers: on a loaded
			// single-CPU CI runner the clients interleave instead of truly
			// bursting, and 4 workers can drain 16 slots fast enough that a
			// run occasionally sheds nothing — which fails the assertion
			// below. 8 slots over 2 workers keeps overflow certain without
			// changing what the test proves.
			QueueDepth: 8, Workers: 2,
			PanicEvery: 5, DegradeAt: 0.5, AdmitSeed: 7,
		},
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Metrics must reconcile even under full chaos: the identities hold
	// per-run regardless of how the races resolved.
	if err := rep.Gate(true); err != nil {
		t.Fatal(err)
	}
	if rep.Statuses["200"] == 0 {
		t.Error("no successful operations at all")
	}
	if rep.Stats.Shed == 0 {
		t.Error("100 clients against a 16-deep queue shed nothing; the overload path never ran")
	}
	if rep.Stats.Panics == 0 {
		t.Error("chaos panics never fired")
	}
	if rep.JobsSubmitted == 0 {
		t.Error("the mix produced no async jobs")
	}

	// Same seed, fresh server: every shared identity byte-identical.
	rep2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep2.Gate(true); err != nil {
		t.Fatal(err)
	}
	if bad := CompareDigests(rep.Digests, rep2.Digests); len(bad) > 0 {
		t.Errorf("repeated seeded run produced different bytes for %v", bad)
	}
}

// Under the tame mix (no disconnects, no doomed deadlines) at concurrency 1,
// two equal-seeded runs must expose equal counter values — the cross-run
// half of the observability determinism gate.
func TestLoadTameMixCountersReproduce(t *testing.T) {
	if testing.Short() {
		t.Skip("load run in -short mode")
	}
	cfg := Config{
		Requests:      120,
		Concurrency:   1,
		Seed:          11,
		Mix:           "tame",
		ClientTimeout: 60 * time.Second,
		Server: serve.Config{
			QueueDepth: 16, Workers: 4,
			PanicEvery: 5, DegradeAt: 0.5, AdmitSeed: 11,
		},
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Gate(true); err != nil {
		t.Fatal(err)
	}
	if rep.Disconnects != 0 {
		t.Errorf("tame mix ran %d disconnect operations, want 0", rep.Disconnects)
	}
	if len(rep.Metrics) == 0 {
		t.Fatal("report carries no scraped counters")
	}
	rep2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep2.Gate(true); err != nil {
		t.Fatal(err)
	}
	if bad := CompareMetrics(rep.Metrics, rep2.Metrics); len(bad) > 0 {
		t.Errorf("equal tame runs scraped different counters for %v", bad)
	}
}

// The mix parameter is validated, and the tame remap only changes the racy
// kinds.
func TestMixValidationAndRemap(t *testing.T) {
	if _, err := Run(Config{Requests: 1, Concurrency: 1, Mix: "wild"}); err == nil {
		t.Error("unknown mix accepted")
	}
	for _, k := range []opKind{opSync, opJob, opStream} {
		if got := tamePlan(plan{kind: k}).kind; got != k {
			t.Errorf("tame remapped kind %d to %d", k, got)
		}
	}
	for _, k := range []opKind{opDisconnect, opDoomed} {
		if got := tamePlan(plan{kind: k, cancelMS: 5}); got.kind != opSync || got.cancelMS != 0 {
			t.Errorf("tame left kind %d as %+v", k, got)
		}
	}
}

// The plan derivation is a pure function of (seed, index).
func TestPlanDeterministic(t *testing.T) {
	n := len(templates())
	for i := 0; i < 500; i++ {
		a, b := planFor(42, i, n), planFor(42, i, n)
		if a != b {
			t.Fatalf("planFor(42, %d) unstable: %+v vs %+v", i, a, b)
		}
	}
	kinds := map[opKind]int{}
	for i := 0; i < 1000; i++ {
		kinds[planFor(1, i, n).kind]++
	}
	for _, k := range []opKind{opSync, opJob, opStream, opDisconnect, opDoomed} {
		if kinds[k] == 0 {
			t.Errorf("1000 plans never produced kind %d", k)
		}
	}
}
