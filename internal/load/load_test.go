package load

import (
	"testing"
	"time"

	"procdecomp/internal/serve"
)

// A scaled-down load run must pass every gate: no hung operations, every
// acknowledged job terminal, no byte-identity conflicts — with panics
// injected and the queue small enough that shedding and degradation engage.
func TestLoadRunGates(t *testing.T) {
	if testing.Short() {
		t.Skip("load run in -short mode")
	}
	cfg := Config{
		Requests:      300,
		Concurrency:   100,
		Seed:          7,
		ClientTimeout: 60 * time.Second,
		Server: serve.Config{
			QueueDepth: 16, Workers: 4,
			PanicEvery: 5, DegradeAt: 0.5, AdmitSeed: 7,
		},
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Gate(); err != nil {
		t.Fatal(err)
	}
	if rep.Statuses["200"] == 0 {
		t.Error("no successful operations at all")
	}
	if rep.Stats.Shed == 0 {
		t.Error("100 clients against a 16-deep queue shed nothing; the overload path never ran")
	}
	if rep.Stats.Panics == 0 {
		t.Error("chaos panics never fired")
	}
	if rep.JobsSubmitted == 0 {
		t.Error("the mix produced no async jobs")
	}

	// Same seed, fresh server: every shared identity byte-identical.
	rep2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep2.Gate(); err != nil {
		t.Fatal(err)
	}
	if bad := CompareDigests(rep.Digests, rep2.Digests); len(bad) > 0 {
		t.Errorf("repeated seeded run produced different bytes for %v", bad)
	}
}

// The plan derivation is a pure function of (seed, index).
func TestPlanDeterministic(t *testing.T) {
	n := len(templates())
	for i := 0; i < 500; i++ {
		a, b := planFor(42, i, n), planFor(42, i, n)
		if a != b {
			t.Fatalf("planFor(42, %d) unstable: %+v vs %+v", i, a, b)
		}
	}
	kinds := map[opKind]int{}
	for i := 0; i < 1000; i++ {
		kinds[planFor(1, i, n).kind]++
	}
	for _, k := range []opKind{opSync, opJob, opStream, opDisconnect, opDoomed} {
		if kinds[k] == 0 {
			t.Errorf("1000 plans never produced kind %d", k)
		}
	}
}
