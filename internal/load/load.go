// Package load is the overload harness for the serve package: it boots an
// in-process pdserve (real TCP listener, real HTTP clients), gates on
// /readyz, and drives thousands of concurrent mixed requests — synchronous
// compile/run/search/trace, durable async jobs, NDJSON event streams, doomed
// deadlines, mid-flight client disconnects, and server-injected panics —
// recording latency percentiles, every outcome class, and the two
// robustness gates the service promises under overload:
//
//   - no hung connections: every request reaches a terminal outcome inside
//     the harness's generous client bound, even while the server sheds,
//     degrades, panics, and retries;
//   - determinism under chaos: every 200 body is hashed under its
//     (template, degradation-budget) identity, and two bodies with the same
//     identity must be byte-identical — within a run and across repeated
//     seeded runs.
package load

import (
	"bufio"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"procdecomp/internal/obs"
	"procdecomp/internal/serve"
)

// Config shapes one load run.
type Config struct {
	// Requests is the total operation count (default 5000); Concurrency the
	// number of concurrent client goroutines (default 2000 — more clients
	// than the server has queue slots, which is the point).
	Requests    int
	Concurrency int
	// Seed drives every random choice: the request mix, tenants, timeouts,
	// and disconnects. Equal seeds produce equal request sequences.
	Seed uint64
	// Mix selects the operation mix: "chaos" (default) includes mid-flight
	// disconnects and deadline-doomed requests; "tame" remaps both to plain
	// synchronous operations, leaving a schedule whose outcome counters are
	// reproducible across runs (disconnect and doom outcomes race the
	// server's progress, so only the tame mix supports exact cross-run
	// counter comparison).
	Mix string
	// Server configures the in-process server under test. Zero values take
	// the serve defaults; the harness leaves chaos knobs to the caller.
	Server serve.Config
	// ClientTimeout is the per-operation hang bound (default 60s): an
	// operation still unresolved past it counts as hung, which fails the
	// harness's gate.
	ClientTimeout time.Duration
	// JobPoll is the async-job poll interval (default 5ms).
	JobPoll time.Duration
}

func (c Config) withDefaults() Config {
	if c.Requests <= 0 {
		c.Requests = 5000
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 2000
	}
	if c.ClientTimeout <= 0 {
		c.ClientTimeout = 60 * time.Second
	}
	if c.JobPoll <= 0 {
		c.JobPoll = 5 * time.Millisecond
	}
	if c.Mix == "" {
		c.Mix = "chaos"
	}
	return c
}

// Percentiles are latency quantiles in milliseconds.
type Percentiles struct {
	P50  float64
	P99  float64
	P999 float64
	Max  float64
}

// Report is the harness's outcome. The gates a CI run should assert on:
// Hung == 0, JobsSubmitted == JobsTerminal, DigestConflicts == 0.
type Report struct {
	Requests    int
	Concurrency int
	Seed        uint64
	ElapsedMS   int64

	// Statuses counts final HTTP statuses ("200", "429", ...); "disconnect"
	// counts operations the harness itself abandoned mid-flight on purpose.
	Statuses map[string]int

	Sync        int // synchronous endpoint operations
	Jobs        int // POST /jobs + poll-to-terminal operations
	Streams     int // POST /jobs + follow /events operations
	Disconnects int // operations canceled mid-flight by design

	Hung            int // operations with no outcome inside ClientTimeout
	JobsSubmitted   int // 202-acknowledged async jobs
	JobsTerminal    int // of those, observed in a terminal state
	StreamsOpened   int
	StreamsTerminal int // streams that delivered a terminal event
	DegradedReplies int // 200s carrying a degraded-budget marker

	Latency Percentiles

	// Digests maps each (template, degradation-budget) identity to the
	// sha256 of its response body; DigestConflicts counts identities that
	// produced two different bodies in this run (must be 0).
	Digests         map[string]string
	DigestConflicts int

	// Metrics holds every counter sample scraped from /metrics after the
	// drain, keyed by the sample's canonical name{labels} form.
	// MetricsCheck is the outcome of reconciling that scrape against the
	// server's ground-truth Stats: "" when every identity held, else the
	// first violation. Gate(true) makes a non-empty check a failure.
	Metrics      map[string]float64 `json:",omitempty"`
	MetricsCheck string             `json:",omitempty"`

	// Stats is the server's own view after drain.
	Stats serve.Stats
}

// template is one deterministic request shape in the mix.
type template struct {
	key      string
	endpoint string
	body     serve.Request
}

// templates returns the fixed request mix. Searches are rare and bounded
// (they dominate evaluation cost); most shapes repeat, so the cache and the
// byte-identity gate both get heavy traffic.
func templates() []template {
	var ts []template
	add := func(key, ep string, req serve.Request) {
		ts = append(ts, template{key: key, endpoint: ep, body: req})
	}
	// A small grid keeps one evaluation cheap, so the harness measures the
	// server's overload machinery rather than the simulator's throughput.
	n := map[string]int64{"N": 16}
	for _, procs := range []int{2, 4} {
		for _, mode := range []string{"ctr", "opt2"} {
			add(fmt.Sprintf("compile-p%d-%s", procs, mode), "/compile",
				serve.Request{GS: true, Procs: procs, Mode: mode, Defines: n})
		}
		for _, blk := range []int64{4, 8} {
			add(fmt.Sprintf("compile-p%d-opt3b%d", procs, blk), "/compile",
				serve.Request{GS: true, Procs: procs, Mode: "opt3", Blk: blk, Defines: n})
		}
		add(fmt.Sprintf("run-p%d-opt2", procs), "/run",
			serve.Request{GS: true, Procs: procs, Mode: "opt2", Defines: n})
		add(fmt.Sprintf("run-p%d-opt3b8", procs), "/run",
			serve.Request{GS: true, Procs: procs, Mode: "opt3", Blk: 8, Defines: n})
	}
	add("trace-p2-opt3b8", "/trace", serve.Request{GS: true, Procs: 2, Mode: "opt3", Blk: 8, Defines: n})
	add("search-p2", "/search", serve.Request{GS: true, Procs: 2, Keep: 6, TopK: 2, Defines: n})
	// Deterministic failures keep the error paths hot: a semantic error
	// (422) and a request-shape error (400).
	add("bad-sem", "/run", serve.Request{Source: "proc main() { x := nope(); }", Entry: "main"})
	add("bad-shape", "/run", serve.Request{GS: true, Source: "dead", Entry: "main"})
	return ts
}

// opKind is what one operation does with its template.
type opKind int

const (
	opSync opKind = iota
	opJob
	opStream
	opDisconnect
	opDoomed
)

// plan is the deterministic schedule for one operation index.
type plan struct {
	kind     opKind
	tmpl     int
	tenant   string
	cancelMS int // opDisconnect: client abandons after this many ms
}

// planFor derives operation i's plan from the seed alone, so the request
// sequence is a pure function of (seed, i) regardless of goroutine
// interleaving.
func planFor(seed uint64, i, ntmpl int) plan {
	rng := rand.New(rand.NewSource(int64(mix(seed, uint64(i)))))
	p := plan{tmpl: rng.Intn(ntmpl), tenant: fmt.Sprintf("tenant-%d", rng.Intn(4))}
	switch roll := rng.Intn(100); {
	case roll < 64:
		p.kind = opSync
	case roll < 79:
		p.kind = opJob
	case roll < 92:
		p.kind = opStream
	case roll < 96:
		p.kind = opDisconnect
		p.cancelMS = 1 + rng.Intn(20)
	default:
		p.kind = opDoomed
	}
	return p
}

// tamePlan remaps the racy operation kinds — disconnects and doomed
// deadlines, whose outcomes depend on how far the server got — to plain
// synchronous operations. The schedule stays a pure function of (seed, i);
// only the outcome-nondeterministic kinds are gone.
func tamePlan(p plan) plan {
	if p.kind == opDisconnect || p.kind == opDoomed {
		p.kind = opSync
		p.cancelMS = 0
	}
	return p
}

// mix is splitmix64's finalizer — the same deterministic hash the server
// uses for Retry-After jitter.
func mix(seed, i uint64) uint64 {
	x := seed ^ (i+1)*0x9e3779b97f4a7c15
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Run executes one load run against a fresh in-process server and returns
// the report. The server is drained (not killed) at the end, so its own
// counters in Report.Stats are complete. With no Server.CacheDir, each run
// gets a fresh temporary cache + journal directory (removed afterwards), so
// the durable-job and cache paths are always under load.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if cfg.Mix != "chaos" && cfg.Mix != "tame" {
		return nil, fmt.Errorf("load: unknown mix %q (want chaos or tame)", cfg.Mix)
	}
	if cfg.Server.CacheDir == "" {
		dir, err := os.MkdirTemp("", "pdload-cache-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		cfg.Server.CacheDir = dir
	}
	s, err := serve.New(cfg.Server)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		s.Close()
		return nil, err
	}
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(ln)
	base := "http://" + ln.Addr().String()
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        cfg.Concurrency,
		MaxIdleConnsPerHost: cfg.Concurrency,
	}}

	// Gate on readiness: the server only reports ready once journal
	// recovery is complete, so no request can race the recovery sweep.
	if err := awaitReady(client, base); err != nil {
		hs.Close()
		s.Close()
		return nil, err
	}

	h := &harness{cfg: cfg, base: base, client: client,
		tmpls: templates(), digests: map[string]string{}, statuses: map[string]int{}}
	start := time.Now()
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= cfg.Requests {
					return
				}
				h.operate(i)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Drain the server first (terminal events flush to any stream the
	// harness left open), then the listener.
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	s.Shutdown(shutCtx)

	// Scrape /metrics over the wire after the drain (the reconciliation
	// identities need every job settled) but before the listener closes, then
	// verify the scrape against the server's ground-truth Stats. The check's
	// outcome ships in the report; Gate(true) turns it into a hard failure.
	metrics, metricsCheck := scrapeCounters(client, base, s)
	hs.Shutdown(shutCtx)

	h.mu.Lock()
	defer h.mu.Unlock()
	rep := &Report{
		Requests: cfg.Requests, Concurrency: cfg.Concurrency, Seed: cfg.Seed,
		ElapsedMS: elapsed.Milliseconds(),
		Statuses:  h.statuses,
		Sync:      h.sync, Jobs: h.jobs, Streams: h.streams, Disconnects: h.disconnects,
		Hung: h.hung, JobsSubmitted: h.jobsSubmitted, JobsTerminal: h.jobsTerminal,
		StreamsOpened: h.streamsOpened, StreamsTerminal: h.streamsTerminal,
		DegradedReplies: h.degraded,
		Latency:         percentiles(h.latencies),
		Digests:         h.digests, DigestConflicts: h.conflicts,
		Metrics: metrics, MetricsCheck: metricsCheck,
		Stats: s.Stats(),
	}
	return rep, nil
}

// scrapeCounters reads /metrics over the wire, verifies the scrape against
// the drained server's Stats, and flattens the counter samples for the
// report. A scrape or parse failure lands in the check string too — an
// unscrapeable exposition is itself a reconciliation failure.
func scrapeCounters(client *http.Client, base string, s *serve.Server) (map[string]float64, string) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil, fmt.Sprintf("scrape: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Sprintf("scrape: status %d", resp.StatusCode)
	}
	sc, err := obs.ParsePrometheus(resp.Body)
	if err != nil {
		return nil, fmt.Sprintf("scrape does not parse: %v", err)
	}
	out := map[string]float64{}
	for _, smp := range sc.Samples {
		if sc.Types[smp.Name] == "counter" {
			out[smp.Key()] = smp.Value
		}
	}
	if err := serve.VerifyScrape(sc, s.Stats()); err != nil {
		return out, err.Error()
	}
	return out, ""
}

func awaitReady(client *http.Client, base string) error {
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := client.Get(base + "/readyz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("load: server never became ready: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

type harness struct {
	cfg    Config
	base   string
	client *http.Client
	tmpls  []template

	mu              sync.Mutex
	statuses        map[string]int
	latencies       []float64
	digests         map[string]string
	conflicts       int
	sync, jobs      int
	streams         int
	disconnects     int
	hung            int
	jobsSubmitted   int
	jobsTerminal    int
	streamsOpened   int
	streamsTerminal int
	degraded        int
}

func (h *harness) count(status string) {
	h.mu.Lock()
	h.statuses[status]++
	h.mu.Unlock()
}

func (h *harness) latency(d time.Duration) {
	h.mu.Lock()
	h.latencies = append(h.latencies, float64(d.Microseconds())/1000)
	h.mu.Unlock()
}

// record hashes a 200 body under its (template, budget) identity and flags
// any identity that ever produces different bytes.
func (h *harness) record(tmplKey, budget string, body []byte) {
	key := tmplKey
	if budget != "" {
		key += "@b" + budget
	}
	sum := sha256.Sum256(body)
	digest := hex.EncodeToString(sum[:])
	h.mu.Lock()
	defer h.mu.Unlock()
	if budget != "" {
		h.degraded++
	}
	if prev, ok := h.digests[key]; ok {
		if prev != digest {
			h.conflicts++
		}
		return
	}
	h.digests[key] = digest
}

func (h *harness) operate(i int) {
	p := planFor(h.cfg.Seed, i, len(h.tmpls))
	if h.cfg.Mix == "tame" {
		p = tamePlan(p)
	}
	t := h.tmpls[p.tmpl]
	switch p.kind {
	case opSync:
		h.mu.Lock()
		h.sync++
		h.mu.Unlock()
		h.doSync(t, p, 0)
	case opDoomed:
		h.mu.Lock()
		h.sync++
		h.mu.Unlock()
		// A 1ms budget is doomed the moment there is any queue: the server
		// should shed it at admission (504) or, if idle, still answer.
		h.doSync(t, p, 1)
	case opDisconnect:
		h.mu.Lock()
		h.disconnects++
		h.mu.Unlock()
		h.doDisconnect(t, p)
	case opJob:
		h.mu.Lock()
		h.jobs++
		h.mu.Unlock()
		h.doJob(t, p, false)
	case opStream:
		h.mu.Lock()
		h.streams++
		h.mu.Unlock()
		h.doJob(t, p, true)
	}
}

func (h *harness) post(ctx context.Context, path string, tenant string, payload any) (*http.Response, error) {
	b, err := json.Marshal(payload)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, "POST", h.base+path, strings.NewReader(string(b)))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Tenant", tenant)
	return h.client.Do(req)
}

func (h *harness) doSync(t template, p plan, timeoutMS int64) {
	ctx, cancel := context.WithTimeout(context.Background(), h.cfg.ClientTimeout)
	defer cancel()
	body := t.body
	body.TimeoutMS = timeoutMS
	start := time.Now()
	resp, err := h.post(ctx, t.endpoint, p.tenant, body)
	if err != nil {
		if ctx.Err() != nil {
			h.markHung()
			return
		}
		h.count("error")
		return
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	h.latency(time.Since(start))
	if err != nil {
		if ctx.Err() != nil {
			h.markHung()
			return
		}
		h.count("error")
		return
	}
	h.count(fmt.Sprint(resp.StatusCode))
	if resp.StatusCode == http.StatusOK {
		h.record(t.key, resp.Header.Get("X-Degraded"), payload)
	}
}

func (h *harness) doDisconnect(t template, p plan) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Duration(p.cancelMS)*time.Millisecond)
	defer cancel()
	resp, err := h.post(ctx, t.endpoint, p.tenant, t.body)
	if err != nil {
		h.count("disconnect")
		return
	}
	// The response beat the disconnect timer; drain it like a normal reply.
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	h.count(fmt.Sprint(resp.StatusCode))
}

func (h *harness) markHung() {
	h.mu.Lock()
	h.hung++
	h.mu.Unlock()
}

type jobAck struct {
	ID       string
	Status   string
	Degraded int
}

func (h *harness) doJob(t template, p plan, stream bool) {
	ctx, cancel := context.WithTimeout(context.Background(), h.cfg.ClientTimeout)
	defer cancel()
	start := time.Now()
	resp, err := h.post(ctx, "/jobs", p.tenant, struct {
		Endpoint string
		Request  serve.Request
	}{t.endpoint, t.body})
	if err != nil {
		if ctx.Err() != nil {
			h.markHung()
			return
		}
		h.count("error")
		return
	}
	ackBody, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	h.latency(time.Since(start))
	if err != nil {
		h.count("error")
		return
	}
	h.count(fmt.Sprint(resp.StatusCode))
	if resp.StatusCode != http.StatusAccepted {
		return // shed, rejected, invalid: a terminal outcome in itself
	}
	var ack jobAck
	if err := json.Unmarshal(ackBody, &ack); err != nil {
		h.count("error")
		return
	}
	h.mu.Lock()
	h.jobsSubmitted++
	h.mu.Unlock()

	if stream {
		h.mu.Lock()
		h.streamsOpened++
		h.mu.Unlock()
		if h.followStream(ctx, ack.ID) {
			h.mu.Lock()
			h.streamsTerminal++
			h.mu.Unlock()
		} else {
			h.markHung()
			return
		}
	}

	// Poll the job to its terminal state and fetch the result bytes.
	for {
		req, err := http.NewRequestWithContext(ctx, "GET", h.base+"/jobs/"+ack.ID, nil)
		if err != nil {
			h.count("error")
			return
		}
		resp, err := h.client.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				h.markHung()
			} else {
				h.count("error")
			}
			return
		}
		payload, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			h.count("error")
			return
		}
		if resp.StatusCode == http.StatusAccepted {
			select {
			case <-time.After(h.cfg.JobPoll):
				continue
			case <-ctx.Done():
				h.markHung()
				return
			}
		}
		h.mu.Lock()
		h.jobsTerminal++
		h.mu.Unlock()
		if resp.StatusCode == http.StatusOK {
			h.record(t.key, resp.Header.Get("X-Degraded"), payload)
		}
		return
	}
}

// followStream reads the job's NDJSON event stream to its terminal event.
// Returns false if the stream ended (or the client gave up) without one.
func (h *harness) followStream(ctx context.Context, id string) bool {
	req, err := http.NewRequestWithContext(ctx, "GET", h.base+"/jobs/"+id+"/events", nil)
	if err != nil {
		return false
	}
	resp, err := h.client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	for sc.Scan() {
		var ev struct {
			Terminal bool
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return false
		}
		if ev.Terminal {
			return true
		}
	}
	return false
}

func percentiles(ms []float64) Percentiles {
	if len(ms) == 0 {
		return Percentiles{}
	}
	s := append([]float64(nil), ms...)
	sort.Float64s(s)
	at := func(q float64) float64 {
		i := int(q * float64(len(s)))
		if i >= len(s) {
			i = len(s) - 1
		}
		return s[i]
	}
	return Percentiles{P50: at(0.50), P99: at(0.99), P999: at(0.999), Max: s[len(s)-1]}
}

// WriteJSON writes the report.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Gate returns an error when a robustness gate fails: a hung operation, a
// non-terminal acknowledged job, or a byte-identity conflict. With metrics
// set, a failed metrics reconciliation (Report.MetricsCheck) fails the gate
// too.
func (r *Report) Gate(metrics bool) error {
	var problems []string
	if r.Hung > 0 {
		problems = append(problems, fmt.Sprintf("%d hung operations", r.Hung))
	}
	if r.JobsTerminal != r.JobsSubmitted {
		problems = append(problems, fmt.Sprintf("%d of %d jobs not terminal", r.JobsSubmitted-r.JobsTerminal, r.JobsSubmitted))
	}
	if r.DigestConflicts > 0 {
		problems = append(problems, fmt.Sprintf("%d byte-identity conflicts", r.DigestConflicts))
	}
	if metrics && r.MetricsCheck != "" {
		problems = append(problems, "metrics reconciliation: "+r.MetricsCheck)
	}
	if len(problems) > 0 {
		return fmt.Errorf("load: gate failed: %s", strings.Join(problems, "; "))
	}
	return nil
}

// CompareDigests checks two seeded runs for byte-identity on every shared
// (template, budget) identity and returns the mismatched keys.
func CompareDigests(a, b map[string]string) []string {
	var bad []string
	for k, av := range a {
		if bv, ok := b[k]; ok && av != bv {
			bad = append(bad, k)
		}
	}
	sort.Strings(bad)
	return bad
}

// CompareMetrics checks two seeded tame-mix runs for equal counter values
// over the union of their samples (a counter present in one run and absent
// in the other is a mismatch too) and returns the differing keys. Two
// families are exempt even under the tame mix:
//
//   - timing counters (any family naming "seconds"): wall-clock sums differ
//     between equal runs by construction;
//   - pdserve_http_requests_total: the harness polls /readyz and /jobs/{id}
//     on wall-clock intervals, so the HTTP edge sees a run-dependent number
//     of polls even when every logical outcome is identical.
func CompareMetrics(a, b map[string]float64) []string {
	union := map[string]bool{}
	for k := range a {
		union[k] = true
	}
	for k := range b {
		union[k] = true
	}
	var bad []string
	for k := range union {
		if strings.Contains(k, "seconds") || strings.HasPrefix(k, "pdserve_http_requests_total") {
			continue
		}
		av, aok := a[k]
		bv, bok := b[k]
		if !aok || !bok || av != bv {
			bad = append(bad, k)
		}
	}
	sort.Strings(bad)
	return bad
}
