package load

import (
	"strings"
	"testing"
)

// The full four-server experiment at the default sizes, gated exactly as CI
// runs it: one switch per shifted run, byte-identical decisions across the
// seeded pair, a silent unshifted control, and a steady state that beats the
// no-adapt control by the margin.
func TestPhaseExperimentGates(t *testing.T) {
	if testing.Short() {
		t.Skip("phase experiment boots four servers")
	}
	rep, err := RunPhase(PhaseConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Gate(); err != nil {
		t.Fatal(err)
	}
	// The decision stream is the experiment's receipt — it must name a real
	// switch, not merely be equal-and-empty across the seeded pair.
	if !strings.Contains(rep.Adaptive.Decisions, `"Outcome":"switched"`) {
		t.Fatalf("adaptive decisions carry no switch:\n%s", rep.Adaptive.Decisions)
	}
	if rep.Unshifted.Decisions != "" {
		t.Fatalf("unshifted control journaled decisions:\n%s", rep.Unshifted.Decisions)
	}
}

// Gate failures must name the failing run, so a red CI log reads without
// re-running locally.
func TestPhaseGateNamesFailures(t *testing.T) {
	rep := &PhaseReport{GainFrac: 0.05}
	rep.Adaptive = PhaseRun{Label: "adaptive", Triggers: 1, Switches: 1, Mapping: "all", SteadyMakespan: 100}
	rep.Repeat = rep.Adaptive
	rep.Repeat.Label = "repeat"
	rep.Control = PhaseRun{Label: "control", SteadyMakespan: 200}
	rep.Unshifted = PhaseRun{Label: "unshifted"}
	if err := rep.Gate(); err != nil {
		t.Fatalf("healthy report flunked: %v", err)
	}

	bad := *rep
	bad.Unshifted.Triggers = 2
	bad.Repeat.Decisions = "x"
	bad.Adaptive.SteadyMakespan = 199
	bad.Control.MetricsCheck = "counter drift"
	err := bad.Gate()
	if err == nil {
		t.Fatal("broken report passed the gate")
	}
	for _, want := range []string{
		"unshifted control triggered 2",
		"decision journals differ",
		"does not beat the no-adapt control",
		"control: metrics reconciliation",
	} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("gate error misses %q:\n%v", want, err)
		}
	}
}
