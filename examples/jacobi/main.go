// Jacobi: a 5-point relaxation where every read comes from the old grid, so
// compile-time resolution alone already exposes all the parallelism — no
// pipelining needed, unlike Gauss-Seidel. The example also contrasts two
// decompositions: wrapped (cyclic) columns, which the analysis resolves
// fully at compile time, and block columns, whose ownership tests fall into
// the "inconclusive" class and remain as run-time resolution — the paper's
// graceful-degradation path (§3.2).
//
//	go run ./examples/jacobi
package main

import (
	"fmt"
	"log"

	"procdecomp/internal/core"
	"procdecomp/internal/exec"
	"procdecomp/internal/istruct"
	"procdecomp/internal/lang"
	"procdecomp/internal/machine"
	"procdecomp/internal/sem"
	"procdecomp/internal/xform"
)

const srcTemplate = `
const N = 64;
const w = 0.25;

dist D = %s(NPROCS);

proc jacobi(Old: matrix[N, N] on D): matrix[N, N] on D {
  let New = matrix(N, N) on D;
  for j = 1 to N {
    New[1, j] = Old[1, j];
    New[N, j] = Old[N, j];
  }
  for i = 2 to N - 1 {
    New[i, 1] = Old[i, 1];
    New[i, N] = Old[i, N];
  }
  for j = 2 to N - 1 {
    for i = 2 to N - 1 {
      New[i, j] = w * (Old[i - 1, j] + Old[i + 1, j] + Old[i, j - 1] + Old[i, j + 1]);
    }
  }
  return New;
}
`

func run(distName string, procs int) {
	src := fmt.Sprintf(srcTemplate, distName)
	prog, err := lang.Parse(src)
	if err != nil {
		log.Fatal(err)
	}
	info, errs := sem.Check(prog, sem.Config{Procs: int64(procs)})
	if len(errs) > 0 {
		log.Fatal(errs[0])
	}
	const n = 64

	input := func() *istruct.Matrix {
		m, _ := istruct.NewMatrix("Old", n, n)
		for i := int64(1); i <= n; i++ {
			for j := int64(1); j <= n; j++ {
				m.Write(i, j, float64((i*7+j*13)%31))
			}
		}
		return m
	}

	progs, err := core.New(info).CompileCTR("jacobi", true)
	if err != nil {
		log.Fatal(err)
	}
	xform.Vectorize(progs)

	out, err := exec.RunSPMD(progs, machine.DefaultConfig(procs),
		map[string]*istruct.Matrix{"Old": input()})
	if err != nil {
		log.Fatal(err)
	}

	// Validate against the sequential interpreter.
	seq, err := exec.RunSequential(info, "jacobi", []exec.ArgVal{{Matrix: input()}})
	if err != nil {
		log.Fatal(err)
	}
	for i := int64(1); i <= n; i++ {
		for j := int64(1); j <= n; j++ {
			w, _ := seq.Ret.Matrix.Read(i, j)
			g, _ := out.Arrays["New"].Read(i, j)
			if d := w - g; d > 1e-9 || d < -1e-9 {
				log.Fatalf("%s: mismatch at (%d,%d)", distName, i, j)
			}
		}
	}

	fmt.Printf("  %-12s  makespan %10d  messages %7d  (validated)\n",
		distName, out.Stats.Makespan, out.Stats.Messages)
}

func main() {
	fmt.Println("Jacobi 5-point relaxation, 64x64 grid")
	for _, procs := range []int{2, 4, 8} {
		fmt.Printf("\n%d processors:\n", procs)
		// Cyclic columns: mod-based ownership, fully resolved at compile time.
		run("cyclic_cols", procs)
		// Block columns: div-based ownership; the three-valued analysis says
		// "inconclusive", so the generated code keeps run-time tests — slower
		// but still correct (the paper's prescribed fallback).
		run("block_cols", procs)
	}
	fmt.Println("\nBlock columns exchange fewer values (only block edges cross processes)")
	fmt.Println("but keep run-time ownership tests; wrapped columns resolve at compile time.")
}
