// Quickstart: compile a three-statement program (the paper's Fig. 4
// example) with run-time and compile-time resolution, print both, and
// execute them on a simulated three-processor machine.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"procdecomp/internal/core"
	"procdecomp/internal/exec"
	"procdecomp/internal/istruct"
	"procdecomp/internal/lang"
	"procdecomp/internal/machine"
	"procdecomp/internal/sem"
	"procdecomp/internal/spmd"
)

// The paper's Fig. 4a: a on P1, b on P2, their sum on P3 (0-indexed here).
// The Out matrix exists so the result can be gathered from the machine.
const src = `
proc main(Out: matrix[1, 1] on proc(2)) {
  let a: int on proc(0) = 5;
  let b: int on proc(1) = 7;
  let cc: int on proc(2) = a + b;
  Out[1, 1] = cc + 0.0;
}
`

func main() {
	// Parse and check against a three-processor machine.
	prog, err := lang.Parse(src)
	if err != nil {
		log.Fatal(err)
	}
	info, errs := sem.Check(prog, sem.Config{Procs: 3})
	if len(errs) > 0 {
		log.Fatal(errs[0])
	}
	comp := core.New(info)

	// Run-time resolution: one generic program, executed by every process,
	// full of ownership tests and coerces (Fig. 4b).
	rtr, err := comp.CompileRTR("main")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== run-time resolution (generic program) ===")
	fmt.Println(spmd.Format(rtr))

	// Compile-time resolution: the mapping information specializes the
	// program per processor; the tests disappear (Fig. 4d).
	ctr, err := comp.CompileCTR("main", true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== compile-time resolution (per-processor programs) ===")
	for _, p := range ctr {
		fmt.Print(spmd.Format(p))
	}

	// Execute the specialized programs on the simulated machine.
	out, _ := istruct.NewMatrix("Out", 1, 1)
	res, err := exec.RunSPMD(ctr, machine.DefaultConfig(3),
		map[string]*istruct.Matrix{"Out": out})
	if err != nil {
		log.Fatal(err)
	}
	v, _ := res.Arrays["Out"].Read(1, 1)
	fmt.Printf("\nresult: %g (expected 12)\n", v)
	fmt.Printf("messages exchanged: %d, makespan: %d cycles\n",
		res.Stats.Messages, res.Stats.Makespan)
}
