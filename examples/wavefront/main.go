// Wavefront: the paper's running example. Compiles the Gauss-Seidel program
// of Fig. 1 under every code-generation strategy, runs each on the simulated
// iPSC/2-like machine, and prints the Fig. 6/7 comparison at one grid size.
//
//	go run ./examples/wavefront
package main

import (
	"fmt"
	"log"

	"procdecomp/internal/bench"
)

func main() {
	const (
		n     = 64
		blk   = 8
		procs = 8
	)
	fmt.Printf("Gauss-Seidel wavefront, %dx%d grid, %d processors, block size %d\n\n", n, n, procs, blk)
	fmt.Printf("%-26s  %12s  %10s  %9s\n", "variant", "makespan", "messages", "speedup")
	fmt.Printf("%-26s  %12s  %10s  %9s\n", "-------", "--------", "--------", "-------")

	var base float64
	for _, v := range bench.AllVariants {
		pt, err := bench.RunGS(v, procs, n, blk)
		if err != nil {
			log.Fatal(err)
		}
		if base == 0 {
			base = float64(pt.Makespan)
		}
		fmt.Printf("%-26s  %12d  %10d  %8.1fx\n",
			v.String(), pt.Makespan, pt.Messages, base/float64(pt.Makespan))
	}

	fmt.Println("\nEvery run above was validated against the sequential reference")
	fmt.Println("interpreter before being reported (bench.RunGS rejects wrong answers).")
}
