// Heat: an explicit 1-D heat equation stepped through time, with the
// time-step rows wrapped around the ring (cyclic rows). Each processor owns
// every S-th time step; row t+1 consumes row t, so the decomposition is a
// pure producer-consumer pipeline along the other axis than the Gauss-Seidel
// example.
//
// The example deliberately shows a limit of the §4 transformations: the
// stencil's x-1/x/x+1 offsets lie in the dimension the messages vary over,
// which is outside the jamming pass's decidable fragment, so each time-step
// row travels as per-element messages after the full row is computed — and
// the time steps serialize, exactly like the flat unoptimized curves of
// Fig. 6. The measured flat makespan across processor counts quantifies why
// the paper's message optimizations are the difference between a pipeline
// and a serial program.
//
//	go run ./examples/heat
package main

import (
	"fmt"
	"log"

	"procdecomp/internal/core"
	"procdecomp/internal/exec"
	"procdecomp/internal/istruct"
	"procdecomp/internal/lang"
	"procdecomp/internal/machine"
	"procdecomp/internal/sem"
	"procdecomp/internal/xform"
)

// U[t, x]: row t is the rod's temperature at step t. Row 1 is the initial
// condition supplied by the harness; columns 1 and W are fixed ends.
const src = `
const T = 64;
const W = 64;
const alpha = 0.25;

dist Steps = cyclic_rows(NPROCS);

proc heat(U: matrix[T, W] on Steps): matrix[T, W] on Steps {
  for t = 2 to T {
    U[t, 1] = 0.0;
    U[t, W] = 0.0;
  }
  for t = 1 to T - 1 {
    for x = 2 to W - 1 {
      U[t + 1, x] = U[t, x] + alpha * (U[t, x - 1] - 2.0 * U[t, x] + U[t, x + 1]);
    }
  }
  return U;
}
`

func initialRod(t, w int64) *istruct.Matrix {
	m, _ := istruct.NewMatrix("U", t, w)
	for x := int64(1); x <= w; x++ {
		// A hot spot in the middle of the rod.
		v := 0.0
		if x > w/3 && x < 2*w/3 {
			v = 100.0
		}
		m.Write(1, x, v)
	}
	return m
}

func main() {
	const tSteps, width = 64, 64
	prog, err := lang.Parse(src)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("1-D heat equation, 64 time steps on a 64-point rod, steps wrapped by row")
	fmt.Printf("\n%-6s  %12s  %10s\n", "procs", "makespan", "messages")

	var seqResult *istruct.Matrix
	for _, procs := range []int{1, 2, 4, 8} {
		info, errs := sem.Check(prog, sem.Config{Procs: int64(procs)})
		if len(errs) > 0 {
			log.Fatal(errs[0])
		}
		if seqResult == nil {
			seq, err := exec.RunSequential(info, "heat",
				[]exec.ArgVal{{Matrix: initialRod(tSteps, width)}})
			if err != nil {
				log.Fatal(err)
			}
			seqResult = seq.Ret.Matrix
		}

		progs, err := core.New(info).CompileCTR("heat", true)
		if err != nil {
			log.Fatal(err)
		}
		// Vectorize/Jam decline here (the stencil offsets are in the
		// message dimension); the calls document that the passes are safe
		// no-ops outside their fragment.
		xform.Vectorize(progs)
		xform.Jam(progs)

		out, err := exec.RunSPMD(progs, machine.DefaultConfig(procs),
			map[string]*istruct.Matrix{"U": initialRod(tSteps, width)})
		if err != nil {
			log.Fatal(err)
		}
		for i := int64(1); i <= tSteps; i++ {
			for x := int64(1); x <= width; x++ {
				if seqResult.Defined(i, x) != out.Arrays["U"].Defined(i, x) {
					log.Fatalf("definedness mismatch at (%d,%d)", i, x)
				}
				if !seqResult.Defined(i, x) {
					continue
				}
				w, _ := seqResult.Read(i, x)
				g, _ := out.Arrays["U"].Read(i, x)
				if d := w - g; d > 1e-9 || d < -1e-9 {
					log.Fatalf("mismatch at (%d,%d): %g vs %g", i, x, g, w)
				}
			}
		}
		fmt.Printf("%-6d  %12d  %10d\n", procs, out.Stats.Makespan, out.Stats.Messages)
	}

	fmt.Println("\nThe makespan is flat in the processor count: each row's values leave")
	fmt.Println("as per-element messages only after the whole row is computed, so time")
	fmt.Println("steps serialize — the same phenomenon as the unoptimized Fig. 6 curves.")

	// Show the final temperature profile coarsely.
	fmt.Println("\nfinal profile (step 64, every 8th point):")
	for x := int64(1); x <= width; x += 8 {
		v, _ := seqResult.Read(tSteps, x)
		fmt.Printf("  x=%2d: %6.2f\n", x, v)
	}
}
