// Polymap: mapping polymorphism (paper §5.1, Figs. 8 and 9). A procedure
// with a fixed mapping forces every call's data to travel to the mapping's
// processor; abstracting the mapping ("λP.λa:P.a") lets each call site be
// compiled where its data lives, eliminating the messages and letting the
// calls proceed in parallel. This example compiles both versions and counts
// the messages.
//
//	go run ./examples/polymap
package main

import (
	"fmt"
	"log"

	"procdecomp/internal/core"
	"procdecomp/internal/exec"
	"procdecomp/internal/istruct"
	"procdecomp/internal/lang"
	"procdecomp/internal/machine"
	"procdecomp/internal/sem"
)

// Monomorphic: scale is pinned to processor 0 (the paper's f = λa:P1.a).
// Both calls must ship their argument to processor 0 and the result back.
const monoSrc = `
proc scale(x: real on proc(0)): real on proc(0) {
  return 2.0 * x;
}
proc main(Out: matrix[2, 1] on proc(2)) {
  let b: real on proc(1) = 7.0;
  let cc: real on proc(2) = 9.0;
  Out[1, 1] = scale(b);
  Out[2, 1] = scale(cc);
}
`

// Polymorphic: the mapping is abstracted (λP.λa:P.a); each call instantiates
// it where the argument lives (Fig. 9), so no coercion messages are needed
// to reach the procedure.
const polySrc = `
proc scale[D: dist](x: real on D): real on D {
  return 2.0 * x;
}
proc main(Out: matrix[2, 1] on proc(2)) {
  let b: real on proc(1) = 7.0;
  let cc: real on proc(2) = 9.0;
  Out[1, 1] = scale[proc(1)](b);
  Out[2, 1] = scale[proc(2)](cc);
}
`

func run(label, src string) {
	prog, err := lang.Parse(src)
	if err != nil {
		log.Fatal(err)
	}
	info, errs := sem.Check(prog, sem.Config{Procs: 3})
	if len(errs) > 0 {
		log.Fatal(errs[0])
	}
	progs, err := core.New(info).CompileCTR("main", true)
	if err != nil {
		log.Fatal(err)
	}
	out, _ := istruct.NewMatrix("Out", 2, 1)
	res, err := exec.RunSPMD(progs, machine.DefaultConfig(3),
		map[string]*istruct.Matrix{"Out": out})
	if err != nil {
		log.Fatal(err)
	}
	v1, _ := res.Arrays["Out"].Read(1, 1)
	v2, _ := res.Arrays["Out"].Read(2, 1)
	fmt.Printf("%-22s  results (%g, %g)  messages %d  makespan %d\n",
		label, v1, v2, res.Stats.Messages, res.Stats.Makespan)
}

func main() {
	fmt.Println("Mapping polymorphism (paper §5.1, Figs. 8/9), three processors")
	fmt.Println()
	run("monomorphic (on P0)", monoSrc)
	run("polymorphic (on D)", polySrc)
	fmt.Println()
	fmt.Println("The monomorphic version coerces both arguments to processor 0 and the")
	fmt.Println("results back out; the polymorphic version computes where the data lives.")
	fmt.Println("(Both still ship the value Out[2,1] needs nowhere: cc already lives on")
	fmt.Println("processor 2, which owns Out — only the b-call's result must move.)")
}
